//! # tspdb-stats
//!
//! Numerics substrate for the `tspdb` workspace — the from-scratch
//! statistical toolbox every higher layer builds on:
//!
//! * [`special`] — error function, gamma family, normal and chi-square
//!   quantiles (machine-precision class accuracy, no external numerics).
//! * [`distributions`] — [`distributions::Normal`], [`distributions::Uniform`]
//!   and the [`distributions::Density`] enum that dynamic density metrics
//!   emit.
//! * [`descriptive`] — moments, Welford accumulators, autocovariance,
//!   rolling statistics, histograms / empirical CDFs.
//! * [`linalg`] — small dense matrices, Cholesky, Levinson–Durbin.
//! * [`regression`] — ordinary least squares with ridge fallback.
//! * [`optimize`] — Nelder–Mead simplex and golden-section search.
//! * [`divergence`] — Hellinger distance (paper eq. 10) and the Theorem 1/2
//!   ratio-threshold bounds for the σ-cache.
//! * [`ordf64`] — totally ordered `f64` for B-tree keyed caches.
//! * [`synopsis`] — B-bucket probabilistic histogram synopses with sound
//!   error bounds (Cormode & Garofalakis optimal bucketing).
//! * [`parallel`] — deterministic fork-join helpers over index ranges
//!   (shared by the Ω-view builder and the possible-worlds executor).
//!
//! This crate deliberately has no dependency other than `rand` (sampling);
//! everything numerical is implemented and tested here.
//!
//! ## Quick start
//!
//! ```
//! use tspdb_stats::distributions::Normal;
//!
//! let n = Normal::from_mean_var(0.0, 4.0);
//! assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
//! // quantile inverts cdf to machine-class precision.
//! assert!((n.quantile(n.cdf(1.3)) - 1.3).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately catches NaN alongside non-positive values
    // in numeric guards; `partial_cmp` obscures that intent.
    clippy::neg_cmp_op_on_partial_ord,
    // Index-based loops mirror the textbook formulations of the numeric
    // kernels (Cholesky, Levinson-Durbin, filters) they implement.
    clippy::needless_range_loop
)]

pub mod descriptive;
pub mod distributions;
pub mod divergence;
pub mod error;
pub mod linalg;
pub mod optimize;
pub mod ordf64;
pub mod parallel;
pub mod regression;
pub mod special;
pub mod student_t;
pub mod synopsis;

pub use distributions::{Density, Normal, Uniform};
pub use error::StatsError;
pub use ordf64::OrdF64;
pub use student_t::StudentT;
pub use synopsis::{merge_sorted_pairs, CountMoments, Estimate, ProbHistogram, PROB_BANDS};

#[cfg(test)]
mod proptests {
    use crate::special::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn erf_is_odd_and_bounded(x in -6.0f64..6.0) {
            let e = erf(x);
            prop_assert!((-1.0..=1.0).contains(&e));
            prop_assert!((erf(-x) + e).abs() < 1e-12);
        }

        #[test]
        fn normal_cdf_is_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(std_normal_cdf(lo) <= std_normal_cdf(hi) + 1e-15);
        }

        #[test]
        fn normal_quantile_inverts_cdf(p in 1e-6f64..0.999999) {
            let x = std_normal_quantile(p);
            prop_assert!((std_normal_cdf(x) - p).abs() < 1e-9);
        }

        #[test]
        fn gammp_in_unit_interval(a in 0.1f64..30.0, x in 0.0f64..60.0) {
            let p = gammp(a, x);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn chi_square_quantile_round_trips(p in 0.001f64..0.999, k in 1u32..20) {
            let x = chi_square_quantile(p, k as f64);
            prop_assert!((chi_square_cdf(x, k as f64) - p).abs() < 1e-7);
        }
    }

    mod divergence_props {
        use crate::divergence::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn hellinger_sq_in_unit_interval(s1 in 1e-3f64..1e3, s2 in 1e-3f64..1e3) {
                let h = hellinger_sq_equal_mean(s1, s2);
                prop_assert!((0.0..=1.0).contains(&h));
            }

            #[test]
            fn theorem1_guarantee_holds(h in 0.001f64..0.8, s in 0.01f64..100.0) {
                // Any ratio below the bound keeps the distance within H'.
                let ds = ratio_threshold_for_distance(h);
                let achieved = hellinger_equal_mean(s, s * ds);
                prop_assert!(achieved <= h + 1e-9);
            }
        }
    }

    mod welford_props {
        use crate::descriptive::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn welford_agrees_with_batch(xs in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
                let mut rs = RunningStats::new();
                for &x in &xs { rs.push(x); }
                prop_assert!((rs.mean() - mean(&xs)).abs() < 1e-6);
                prop_assert!((rs.variance() - sample_variance(&xs)).abs() < 1e-4);
            }
        }
    }
}
