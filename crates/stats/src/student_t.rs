//! Student-t distribution and the regularized incomplete beta function.
//!
//! GARCH innovations on real sensor data are heavier-tailed than Gaussian;
//! the Student-t is the standard alternative innovation distribution in the
//! GARCH literature and a natural extension point for the paper's metrics
//! (its C-GARCH exists precisely because Gaussian tails understate outlier
//! probability). The CDF requires the regularized incomplete beta function
//! `I_x(a, b)`, implemented here via the standard continued fraction
//! (modified Lentz), accurate to ~1e-13.

use crate::special::ln_gamma;

/// Convergence tolerance of the continued fraction.
const EPS: f64 = 1e-14;
/// Underflow guard for Lentz's algorithm.
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Natural log of the complete beta function `ln B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "ln_beta: parameters must be positive");
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Continued fraction for the incomplete beta function (Lentz).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Uses the continued fraction directly when `x < (a+1)/(a+b+2)` and the
/// symmetry `I_x(a,b) = 1 − I_{1−x}(b,a)` otherwise.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betai: parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "betai: x must be in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        (front * betacf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - front * betacf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Student-t distribution with `nu` degrees of freedom, location `mu` and
/// scale `s` (so variance is `s²·ν/(ν−2)` for `ν > 2`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
    mu: f64,
    scale: f64,
}

impl StudentT {
    /// Standard Student-t (location 0, scale 1).
    pub fn standard(nu: f64) -> Self {
        StudentT::new(nu, 0.0, 1.0)
    }

    /// Location-scale Student-t.
    ///
    /// # Panics
    /// Panics unless `nu > 0` and `scale > 0` (both finite).
    pub fn new(nu: f64, mu: f64, scale: f64) -> Self {
        assert!(
            nu > 0.0 && nu.is_finite(),
            "StudentT: degrees of freedom must be positive, got {nu}"
        );
        assert!(
            scale > 0.0 && scale.is_finite(),
            "StudentT: scale must be positive, got {scale}"
        );
        StudentT { nu, mu, scale }
    }

    /// Degrees of freedom.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Location.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Variance `s²·ν/(ν−2)`; `NaN` when `ν ≤ 2` (undefined).
    pub fn var(&self) -> f64 {
        if self.nu > 2.0 {
            self.scale * self.scale * self.nu / (self.nu - 2.0)
        } else {
            f64::NAN
        }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.scale;
        let ln_norm = ln_gamma((self.nu + 1.0) / 2.0)
            - ln_gamma(self.nu / 2.0)
            - 0.5 * (self.nu * std::f64::consts::PI).ln();
        (ln_norm - (self.nu + 1.0) / 2.0 * (1.0 + z * z / self.nu).ln()).exp() / self.scale
    }

    /// Cumulative probability `P(X ≤ x)` via the incomplete beta function:
    /// for `t ≥ 0`, `P(T ≤ t) = 1 − I_{ν/(ν+t²)}(ν/2, 1/2) / 2`.
    pub fn cdf(&self, x: f64) -> f64 {
        let t = (x - self.mu) / self.scale;
        let ib = betai(self.nu / 2.0, 0.5, self.nu / (self.nu + t * t));
        if t >= 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    /// Probability mass on `[lo, hi]`.
    pub fn prob_in(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::std_normal_cdf;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn betai_reference_values() {
        // I_0.5(a, a) = 0.5 by symmetry.
        for a in [0.5, 1.0, 3.5, 10.0] {
            close(betai(a, a, 0.5), 0.5, 1e-13);
        }
        // I_x(1, 1) = x (uniform).
        for x in [0.1, 0.25, 0.9] {
            close(betai(1.0, 1.0, x), x, 1e-13);
        }
        // I_x(1, b) = 1 − (1−x)^b.
        close(betai(1.0, 3.0, 0.3), 1.0 - 0.7f64.powi(3), 1e-13);
        // Endpoint behaviour.
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_complement_identity() {
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.8), (7.0, 1.5, 0.55)] {
            close(betai(a, b, x) + betai(b, a, 1.0 - x), 1.0, 1e-12);
        }
    }

    #[test]
    fn t_cdf_known_quantiles() {
        // Classic t-table: P(T_1 ≤ 6.3138) = 0.95 (and 12.7062 for 0.975);
        // P(T_5 ≤ 2.0150) = 0.95; P(T_10 ≤ 1.8125) = 0.95.
        close(
            StudentT::standard(1.0).cdf(6.313_751_514_675_04),
            0.95,
            1e-9,
        );
        close(
            StudentT::standard(1.0).cdf(12.706_204_736_432_1),
            0.975,
            1e-9,
        );
        close(
            StudentT::standard(5.0).cdf(2.015_048_372_669_16),
            0.95,
            1e-9,
        );
        close(
            StudentT::standard(10.0).cdf(1.812_461_122_811_68),
            0.95,
            1e-9,
        );
    }

    #[test]
    fn t_is_symmetric() {
        let t = StudentT::standard(4.0);
        close(t.cdf(0.0), 0.5, 1e-13);
        for x in [0.5, 1.7, 4.0] {
            close(t.cdf(-x) + t.cdf(x), 1.0, 1e-12);
            close(t.pdf(-x), t.pdf(x), 1e-13);
        }
    }

    #[test]
    fn t_converges_to_normal_for_large_nu() {
        let t = StudentT::standard(2000.0);
        for x in [-2.0, -0.5, 0.0, 1.0, 2.5] {
            close(t.cdf(x), std_normal_cdf(x), 2e-3);
        }
    }

    #[test]
    fn t_has_heavier_tails_than_normal() {
        let t = StudentT::standard(3.0);
        // P(|T| > 4) must exceed P(|Z| > 4) markedly.
        let t_tail = 2.0 * (1.0 - t.cdf(4.0));
        let z_tail = 2.0 * (1.0 - std_normal_cdf(4.0));
        assert!(t_tail > 50.0 * z_tail, "t tail {t_tail} vs z tail {z_tail}");
    }

    #[test]
    fn location_scale_shifts_properly() {
        let t = StudentT::new(5.0, 10.0, 2.0);
        close(t.cdf(10.0), 0.5, 1e-13);
        close(t.mean(), 10.0, 0.0);
        close(t.var(), 4.0 * 5.0 / 3.0, 1e-12);
        // prob_in integrates the density.
        let mass = t.prob_in(6.0, 14.0);
        let std_mass = StudentT::standard(5.0).prob_in(-2.0, 2.0);
        close(mass, std_mass, 1e-12);
    }

    #[test]
    fn pdf_integrates_to_cdf_numerically() {
        let t = StudentT::standard(7.0);
        // Trapezoid over [-8, 1.3] against cdf(1.3) − cdf(−8): the lower
        // tail below −8 carries non-negligible mass for a t distribution,
        // so the comparison must subtract it.
        let (a, b, n) = (-8.0, 1.3, 20_000);
        let h = (b - a) / n as f64;
        let mut acc = 0.5 * (t.pdf(a) + t.pdf(b));
        for i in 1..n {
            acc += t.pdf(a + i as f64 * h);
        }
        close(acc * h, t.cdf(1.3) - t.cdf(a), 1e-7);
    }

    #[test]
    fn variance_undefined_below_two_dof() {
        assert!(StudentT::standard(1.5).var().is_nan());
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn rejects_non_positive_nu() {
        StudentT::standard(0.0);
    }
}
