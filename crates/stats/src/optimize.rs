//! Derivative-free optimisation: Nelder–Mead simplex search.
//!
//! GARCH(1,1) quasi-maximum-likelihood has a smooth 3-parameter objective
//! whose gradient is awkward near the stationarity boundary; Nelder–Mead
//! over an unconstrained reparametrisation (see `tspdb-models::garch`) is
//! robust, dependency-free and plenty fast for windows of a few hundred
//! observations.

/// Configuration for the Nelder–Mead simplex minimiser.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Maximum number of iterations (each iteration is one reflection /
    /// expansion / contraction / shrink cycle).
    pub max_iter: usize,
    /// Convergence tolerance on the simplex function-value spread.
    pub f_tol: f64,
    /// Convergence tolerance on the simplex diameter.
    pub x_tol: f64,
    /// Initial simplex edge length relative to each coordinate (absolute
    /// fallback when a coordinate is zero).
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            max_iter: 400,
            f_tol: 1e-10,
            x_tol: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Outcome of a simplex minimisation.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether a convergence tolerance was met before `max_iter`.
    pub converged: bool,
}

impl NelderMead {
    /// Minimises `f` starting from `x0`.
    ///
    /// Non-finite objective values are treated as `+∞`, which lets callers
    /// encode hard constraints by returning `f64::INFINITY`.
    pub fn minimize<F>(&self, mut f: F, x0: &[f64]) -> OptimResult
    where
        F: FnMut(&[f64]) -> f64,
    {
        let n = x0.len();
        assert!(n > 0, "NelderMead: empty parameter vector");
        let clean = |v: f64| if v.is_finite() { v } else { f64::INFINITY };

        // Standard coefficients (adaptive variants help mostly for n >> 10;
        // our problems are 2-4 dimensional).
        let alpha = 1.0; // reflection
        let gamma = 2.0; // expansion
        let rho = 0.5; // contraction
        let sigma = 0.5; // shrink

        // Build the initial simplex: x0 plus one perturbed vertex per axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        simplex.push((x0.to_vec(), clean(f(x0))));
        for i in 0..n {
            let mut v = x0.to_vec();
            let step = if v[i] != 0.0 {
                self.initial_step * v[i].abs()
            } else {
                self.initial_step
            };
            v[i] += step;
            let fv = clean(f(&v));
            simplex.push((v, fv));
        }

        let mut iterations = 0;
        let mut converged = false;
        while iterations < self.max_iter {
            iterations += 1;
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

            // Convergence: function spread and simplex diameter.
            let f_best = simplex[0].1;
            let f_worst = simplex[n].1;
            let f_spread = (f_worst - f_best).abs();
            let x_spread = simplex[1..]
                .iter()
                .map(|(v, _)| {
                    v.iter()
                        .zip(&simplex[0].0)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max)
                })
                .fold(0.0f64, f64::max);
            if f_spread < self.f_tol * (1.0 + f_best.abs()) && x_spread < self.x_tol {
                converged = true;
                break;
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for (v, _) in &simplex[..n] {
                for (c, vi) in centroid.iter_mut().zip(v) {
                    *c += vi / n as f64;
                }
            }

            let worst = simplex[n].clone();
            let second_worst_f = simplex[n - 1].1;

            let reflect: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + alpha * (c - w))
                .collect();
            let f_reflect = clean(f(&reflect));

            if f_reflect < simplex[0].1 {
                // Try expanding further in the same direction.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(&reflect)
                    .map(|(c, r)| c + gamma * (r - c))
                    .collect();
                let f_expand = clean(f(&expand));
                simplex[n] = if f_expand < f_reflect {
                    (expand, f_expand)
                } else {
                    (reflect, f_reflect)
                };
            } else if f_reflect < second_worst_f {
                simplex[n] = (reflect, f_reflect);
            } else {
                // Contract toward the better of (worst, reflected).
                let (base, f_base) = if f_reflect < worst.1 {
                    (&reflect, f_reflect)
                } else {
                    (&worst.0, worst.1)
                };
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(base)
                    .map(|(c, b)| c + rho * (b - c))
                    .collect();
                let f_contract = clean(f(&contract));
                if f_contract < f_base {
                    simplex[n] = (contract, f_contract);
                } else {
                    // Shrink everything toward the best vertex.
                    let best = simplex[0].0.clone();
                    for (v, fv) in simplex.iter_mut().skip(1) {
                        for (vi, bi) in v.iter_mut().zip(&best) {
                            *vi = bi + sigma * (*vi - bi);
                        }
                        *fv = clean(f(v));
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        OptimResult {
            x: simplex[0].0.clone(),
            fx: simplex[0].1,
            iterations,
            converged,
        }
    }
}

/// Golden-section search for a univariate minimum on `[lo, hi]`.
///
/// Used by tests and by model-order sweeps where a scalar hyper-parameter is
/// tuned against a validation criterion.
pub fn golden_section<F>(mut f: F, lo: f64, hi: f64, tol: f64) -> (f64, f64)
where
    F: FnMut(f64) -> f64,
{
    assert!(lo < hi, "golden_section: need lo < hi");
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let nm = NelderMead::default();
        let res = nm.minimize(
            |x| (x[0] - 3.0).powi(2) + 2.0 * (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
        );
        assert!(
            res.converged,
            "did not converge in {} iters",
            res.iterations
        );
        assert!((res.x[0] - 3.0).abs() < 1e-4, "x0 = {}", res.x[0]);
        assert!((res.x[1] + 1.0).abs() < 1e-4, "x1 = {}", res.x[1]);
        assert!(res.fx < 1e-7);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let nm = NelderMead {
            max_iter: 4000,
            ..NelderMead::default()
        };
        let res = nm.minimize(
            |x| {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                a * a + 100.0 * b * b
            },
            &[-1.2, 1.0],
        );
        assert!((res.x[0] - 1.0).abs() < 1e-3, "x0 = {}", res.x[0]);
        assert!((res.x[1] - 1.0).abs() < 1e-3, "x1 = {}", res.x[1]);
    }

    #[test]
    fn respects_infinite_barrier() {
        // Constraint x > 0 encoded as +∞; optimum of (x-2)² at 2 is interior,
        // but starting point and simplex cross the barrier.
        let nm = NelderMead::default();
        let res = nm.minimize(
            |x| {
                if x[0] <= 0.0 {
                    f64::INFINITY
                } else {
                    (x[0] - 2.0).powi(2)
                }
            },
            &[0.5],
        );
        assert!((res.x[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn handles_one_dimension() {
        let nm = NelderMead::default();
        let res = nm.minimize(|x| (x[0] + 5.0).powi(2) + 1.0, &[10.0]);
        assert!((res.x[0] + 5.0).abs() < 1e-4);
        assert!((res.fx - 1.0).abs() < 1e-7);
    }

    #[test]
    fn golden_section_finds_scalar_minimum() {
        let (x, fx) = golden_section(|x| (x - 1.7).powi(2) + 0.25, -10.0, 10.0, 1e-8);
        assert!((x - 1.7).abs() < 1e-6);
        assert!((fx - 0.25).abs() < 1e-10);
    }
}
