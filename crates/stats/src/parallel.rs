//! Deterministic fork-join parallelism over index ranges.
//!
//! A tiny structured-concurrency helper in the spirit of rayon's
//! `par_chunks` (the build environment is offline, so the dependency is
//! not available): the index range `0..n` is split into at most `threads`
//! contiguous segments, one scoped thread maps each segment, and the
//! per-segment results are returned **in segment order** — callers that
//! concatenate them obtain exactly the sequential output, regardless of
//! thread scheduling.

/// Resolves a thread-count knob: `0` means "one per available core",
/// anything else is taken literally; the result never exceeds `n` work
/// items and is at least 1.
pub fn effective_threads(requested: usize, n: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, n.max(1))
}

/// Splits `0..n` into `threads` contiguous near-equal segments and maps
/// each with `f` on its own scoped thread, returning the per-segment
/// results in segment order.
///
/// With `threads <= 1` the single segment is mapped on the calling thread
/// (no spawn), so sequential and parallel execution run identical code.
pub fn map_segments<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    F: Fn(std::ops::Range<usize>) -> R + Sync,
    R: Send,
{
    let threads = effective_threads(threads, n);
    if threads <= 1 || n == 0 {
        return vec![f(0..n)];
    }
    // Segment sizes differ by at most one: the first `rem` segments get
    // `base + 1` items.
    let base = n / threads;
    let rem = n % threads;
    let mut bounds = Vec::with_capacity(threads);
    let mut start = 0usize;
    for i in 0..threads {
        let len = base + usize::from(i < rem);
        bounds.push(start..start + len);
        start += len;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|range| scope.spawn(|| f(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel segment worker panicked"))
            .collect()
    })
}

/// [`map_segments`] for fallible segment work: the first error (in segment
/// order) wins, mirroring what a sequential loop would have returned.
pub fn try_map_segments<R, E, F>(n: usize, threads: usize, f: F) -> Result<Vec<R>, E>
where
    F: Fn(std::ops::Range<usize>) -> Result<R, E> + Sync,
    R: Send,
    E: Send,
{
    map_segments(n, threads, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn segment_results_preserve_order() {
        for threads in [1, 2, 3, 8, 64] {
            let segments = map_segments(100, threads, |r| r.collect::<Vec<_>>());
            let flat: Vec<usize> = segments.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn all_segments_actually_run() {
        let count = AtomicUsize::new(0);
        let segments = map_segments(17, 4, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
            r.len()
        });
        assert_eq!(segments.iter().sum::<usize>(), 17);
        assert_eq!(count.load(Ordering::Relaxed), 17);
        assert_eq!(segments.len(), 4);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(map_segments(0, 8, |r| r.len()), vec![0]);
        // More threads than items: one item per segment.
        let segs = map_segments(3, 8, |r| r.len());
        assert_eq!(segs, vec![1, 1, 1]);
    }

    #[test]
    fn first_error_in_segment_order_wins() {
        let res: Result<Vec<usize>, usize> = try_map_segments(10, 4, |r| {
            if r.contains(&2) || r.contains(&7) {
                Err(r.start)
            } else {
                Ok(r.len())
            }
        });
        // Segments are [0..3), [3..6), [6..8), [8..10): errors in the first
        // and third; the first (start 0) wins.
        assert_eq!(res.unwrap_err(), 0);
    }

    #[test]
    fn effective_threads_resolution() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(4, 100), 4);
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(3, 0), 1);
    }
}
