//! Minimal dense linear algebra: the few operations the estimation
//! procedures need (Cholesky factorisation and SPD solves for normal
//! equations), implemented directly on a small row-major matrix type.
//!
//! The matrices involved are tiny — ARMA regression designs have at most a
//! dozen columns and the ARCH LM-test at most nine — so an O(k³) dense
//! Cholesky is the right tool; no pivoting or blocking is required.

use crate::error::StatsError;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Gram matrix `selfᵀ * self` computed without forming the transpose.
    pub fn gram(&self) -> Matrix {
        let k = self.cols;
        let mut g = Matrix::zeros(k, k);
        for r in 0..self.rows {
            let row = &self.data[r * k..(r + 1) * k];
            for i in 0..k {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..k {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..k {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `selfᵀ * y` for a response vector `y`.
    pub fn tr_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, y.len(), "tr_matvec: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let yv = y[r];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * yv;
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Cholesky factorisation of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `L Lᵀ = A`.
///
/// Fails with [`StatsError::NotPositiveDefinite`] when a non-positive pivot
/// is encountered.
pub fn cholesky(a: &Matrix) -> Result<Matrix, StatsError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky: matrix must be square");
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(StatsError::NotPositiveDefinite);
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// (forward then backward substitution).
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, StatsError> {
    let l = cholesky(a)?;
    let n = l.rows();
    assert_eq!(b.len(), n, "solve_spd: rhs dimension mismatch");
    // Forward: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Backward: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(x)
}

/// Solves the symmetric Toeplitz system arising from the Yule-Walker
/// equations via Levinson–Durbin recursion.
///
/// `autocov` holds autocovariances `γ_0 .. γ_p`; returns the AR coefficients
/// `φ_1 .. φ_p` together with the innovation variance.
pub fn levinson_durbin(autocov: &[f64]) -> Result<(Vec<f64>, f64), StatsError> {
    if autocov.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: autocov.len(),
        });
    }
    let p = autocov.len() - 1;
    let g0 = autocov[0];
    if !(g0 > 0.0) {
        return Err(StatsError::DegenerateInput(
            "Yule-Walker: zero lag-0 autocovariance (constant series)".into(),
        ));
    }
    let mut phi = vec![0.0; p];
    let mut prev = vec![0.0; p];
    let mut v = g0;
    for k in 0..p {
        let mut acc = autocov[k + 1];
        for j in 0..k {
            acc -= prev[j] * autocov[k - j];
        }
        let reflection = acc / v;
        phi[k] = reflection;
        for j in 0..k {
            phi[j] = prev[j] - reflection * prev[k - 1 - j];
        }
        v *= 1.0 - reflection * reflection;
        if !(v > 0.0) {
            return Err(StatsError::DegenerateInput(
                "Levinson-Durbin: non-positive prediction variance".into(),
            ));
        }
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    Ok((phi, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.5, -1.0, 2.0, 3.0]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_recovers_known_factor() {
        // A = L Lᵀ with L = [[2,0],[1,3]] ⇒ A = [[4,2],[2,10]].
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 10.0]);
        let l = cholesky(&a).unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 3.0).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(cholesky(&a), Err(StatsError::NotPositiveDefinite)));
    }

    #[test]
    fn solve_spd_solves_exactly() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn levinson_durbin_solves_ar2_yule_walker() {
        // AR(2) with φ = (0.5, 0.3): theoretical autocorrelations satisfy
        // ρ1 = φ1/(1-φ2), ρ2 = φ1·ρ1 + φ2.
        let phi1 = 0.5;
        let phi2 = 0.3;
        let rho1: f64 = phi1 / (1.0 - phi2);
        let rho2: f64 = phi1 * rho1 + phi2;
        let rho3: f64 = phi1 * rho2 + phi2 * rho1;
        let (phi, v) = levinson_durbin(&[1.0, rho1, rho2, rho3]).unwrap();
        assert!((phi[0] - phi1).abs() < 1e-10, "phi1 {}", phi[0]);
        assert!((phi[1] - phi2).abs() < 1e-10, "phi2 {}", phi[1]);
        // Third coefficient of a true AR(2) must be ≈ 0.
        assert!(phi[2].abs() < 1e-10, "phi3 {}", phi[2]);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn levinson_durbin_rejects_constant_series() {
        assert!(levinson_durbin(&[0.0, 0.0, 0.0]).is_err());
    }
}
