//! B-bucket probabilistic histogram synopses over (value, probability)
//! pairs — the numeric core of the planner's `SynopsisStrategy`.
//!
//! A [`ProbHistogram`] summarises a column of a tuple-independent
//! probabilistic relation: every tuple contributes its value `v` and its
//! existence probability `p`. Tuples are packed into at most `B` value
//! buckets chosen by the optimal-bucketing dynamic program of Cormode &
//! Garofalakis (*Histograms and Wavelets on Probabilistic Data*),
//! specialised to the expectation synopses used here: bucket boundaries
//! minimise the probability-weighted sum of squared value deviations
//! (the V-optimal objective with `p` as the item weight), so buckets are
//! tight exactly where the expected mass sits.
//!
//! Each bucket stores its payload split into [`PROB_BANDS`] fixed
//! probability bands, and each band carries five closed-form sums:
//! expected count `Σp`, count variance `Σp(1−p)`, expected sum `Σp·v`,
//! sum variance `Σp(1−p)v²`, and the Berry–Esseen third-moment sum
//! `Σp(1−p)(p²+(1−p)²)`. From those, `COUNT`/`SUM` aggregates — full
//! range, value-range restricted, and/or probability-thresholded — are
//! answered in O(B·G) with a **sound error bound**: the reported
//! half-width always contains the exact answer, and is exactly `0` when
//! no query boundary cuts through a bucket or band.
//!
//! Determinism: building and querying are pure floating-point folds over
//! a totally ordered (`f64::total_cmp`) input, so identical inputs give
//! bit-identical synopses and bit-identical answers on every run.

use std::fmt;

/// Number of fixed probability bands per bucket. Band `j` holds tuples
/// with `p ∈ [j/G, (j+1)/G)` (the last band is closed at 1), so any
/// `THRESHOLD τ` that is a multiple of `1/G` — with `G = 20`, every
/// multiple of `0.05` — is answered exactly; other thresholds pay only
/// the straddled band's mass as error bound.
pub const PROB_BANDS: usize = 20;

/// Cap on the number of base segments the optimal-bucketing DP runs
/// over. Inputs larger than this are pre-aggregated into equi-depth
/// segments first, keeping the DP at `O(cap²·B)` regardless of input
/// size.
const MAX_BASE_SEGMENTS: usize = 512;

/// The five closed-form sums one probability band of one bucket carries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BandStats {
    /// Expected tuple count `Σ p`.
    pub exp_count: f64,
    /// Count variance `Σ p(1−p)` (tuple independence).
    pub var_count: f64,
    /// Expected value sum `Σ p·v` (linearity of expectation).
    pub exp_sum: f64,
    /// Sum variance `Σ p(1−p)·v²`.
    pub var_sum: f64,
    /// Berry–Esseen third-moment sum `Σ p(1−p)(p²+(1−p)²)` — bounds the
    /// normal approximation of the bucket's Poisson-binomial count.
    pub rho: f64,
}

impl BandStats {
    fn add_tuple(&mut self, v: f64, p: f64) {
        let q = 1.0 - p;
        self.exp_count += p;
        self.var_count += p * q;
        self.exp_sum += p * v;
        self.var_sum += p * q * v * v;
        self.rho += p * q * (p * p + q * q);
    }

    fn absorb(&mut self, other: &BandStats) {
        self.exp_count += other.exp_count;
        self.var_count += other.var_count;
        self.exp_sum += other.exp_sum;
        self.var_sum += other.var_sum;
        self.rho += other.rho;
    }
}

/// One value bucket of a [`ProbHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Smallest member value.
    pub lo: f64,
    /// Largest member value (buckets cover the closed range `[lo, hi]`
    /// of their members; adjacent buckets never share a value).
    pub hi: f64,
    /// Number of member tuples.
    pub tuples: usize,
    /// Per-probability-band payload ([`PROB_BANDS`] bands).
    pub bands: [BandStats; PROB_BANDS],
}

impl Bucket {
    /// The bucket's payload summed over all probability bands.
    pub fn totals(&self) -> BandStats {
        let mut t = BandStats::default();
        for b in &self.bands {
            t.absorb(b);
        }
        t
    }
}

/// An estimate with its sound absolute error bound: the exact answer is
/// guaranteed to lie in `[value − half_width, value + half_width]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// Sound absolute error bound (0 = the answer is exact).
    pub half_width: f64,
}

impl Estimate {
    /// An exact estimate (zero half-width).
    pub fn exact(value: f64) -> Self {
        Estimate {
            value,
            half_width: 0.0,
        }
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ± {}", self.value, self.half_width)
    }
}

/// Count moments of a (restricted) domain, each with its error bound —
/// the inputs a normal-approximation tail probability needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountMoments {
    /// Expected count `Σ p`.
    pub mean: Estimate,
    /// Count variance `Σ p(1−p)`.
    pub variance: Estimate,
    /// Berry–Esseen third-moment sum `Σ p(1−p)(p²+(1−p)²)`.
    pub rho: Estimate,
}

/// A guaranteed enclosure `[lo, hi]` around a point estimate — the
/// internal interval arithmetic behind every [`Estimate`].
#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: f64,
    hi: f64,
    point: f64,
}

impl Interval {
    fn zero() -> Self {
        Interval {
            lo: 0.0,
            hi: 0.0,
            point: 0.0,
        }
    }

    fn add(mut self, other: Interval) -> Interval {
        self.lo += other.lo;
        self.hi += other.hi;
        self.point += other.point;
        self
    }

    fn estimate(self) -> Estimate {
        Estimate {
            value: self.point,
            half_width: (self.point - self.lo).max(self.hi - self.point).max(0.0),
        }
    }
}

/// How a bucket relates to a half-open value range `[lo, hi)`.
enum Overlap {
    Out,
    Full,
    /// Partially overlapped; carries the overlapped fraction of the
    /// bucket's value span (the interpolation point, not a guarantee).
    Partial(f64),
}

/// The probability-threshold cut expressed in band space: bands
/// `full_from..` qualify entirely, `straddle` (when present) qualifies
/// partially.
#[derive(Clone, Copy)]
struct ThresholdCut {
    full_from: usize,
    straddle: Option<usize>,
}

impl ThresholdCut {
    fn of(min_prob: f64) -> Self {
        if min_prob <= 0.0 {
            return ThresholdCut {
                full_from: 0,
                straddle: None,
            };
        }
        let g = PROB_BANDS as f64;
        if min_prob >= 1.0 - 1e-12 {
            // τ = 1 keeps only certain tuples; they share the last band
            // with p ∈ [1 − 1/G, 1), so that band straddles.
            return ThresholdCut {
                full_from: PROB_BANDS,
                straddle: Some(PROB_BANDS - 1),
            };
        }
        let cut = min_prob * g;
        let rounded = cut.round();
        if (cut - rounded).abs() < 1e-9 {
            // τ sits on a band boundary: bands ≥ it qualify exactly.
            ThresholdCut {
                full_from: rounded as usize,
                straddle: None,
            }
        } else {
            let below = cut.floor() as usize;
            ThresholdCut {
                full_from: below + 1,
                straddle: Some(below),
            }
        }
    }
}

/// A B-bucket probabilistic histogram over one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbHistogram {
    buckets: Vec<Bucket>,
    tuples: usize,
}

impl ProbHistogram {
    /// Builds a histogram with at most `buckets` buckets from `(value,
    /// probability)` pairs. Non-finite values are dropped; probabilities
    /// are clamped into `[0, 1]`. `buckets` is clamped to at least 1.
    ///
    /// Bucket boundaries come from the V-optimal DP (probability-weighted
    /// SSE of values), run over at most `MAX_BASE_SEGMENTS` (512) equi-depth
    /// base segments so the build stays `O(n log n + cap²·B)`.
    pub fn build(pairs: Vec<(f64, f64)>, buckets: usize) -> ProbHistogram {
        Self::from_sorted(&Self::prepare_pairs(pairs), buckets)
    }

    /// Sanitizes and stably sorts `(value, probability)` pairs exactly as
    /// [`ProbHistogram::build`] does: non-finite values are dropped,
    /// probabilities clamped into `[0, 1]`, then a **stable** sort by
    /// `total_cmp` on the value. The output is the canonical pair sequence
    /// the histogram is a pure function of — callers that retain it can
    /// maintain the histogram incrementally via [`merge_sorted_pairs`]
    /// with a bit-identical-to-rebuild guarantee.
    pub fn prepare_pairs(mut pairs: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
        pairs.retain(|&(v, _)| v.is_finite());
        for (_, p) in pairs.iter_mut() {
            *p = p.clamp(0.0, 1.0);
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        pairs
    }

    /// Builds a histogram from pairs already in [`prepare_pairs`] order —
    /// the deterministic core of [`ProbHistogram::build`]. Identical input
    /// sequences produce bit-identical histograms, which is the contract
    /// incremental synopsis maintenance rests on.
    ///
    /// [`prepare_pairs`]: ProbHistogram::prepare_pairs
    pub fn from_sorted(pairs: &[(f64, f64)], buckets: usize) -> ProbHistogram {
        let buckets = buckets.max(1);
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0.total_cmp(&w[1].0).is_le()),
            "from_sorted requires prepare_pairs order"
        );
        let n = pairs.len();
        if n == 0 {
            return ProbHistogram {
                buckets: Vec::new(),
                tuples: 0,
            };
        }

        let segments = base_segments(pairs);
        let bounds = optimal_boundaries(pairs, &segments, buckets);

        let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
        for w in bounds.windows(2) {
            let (start, end) = (w[0], w[1]);
            let mut bucket = Bucket {
                lo: pairs[start].0,
                hi: pairs[end - 1].0,
                tuples: end - start,
                bands: [BandStats::default(); PROB_BANDS],
            };
            for &(v, p) in &pairs[start..end] {
                bucket.bands[band_of(p)].add_tuple(v, p);
            }
            out.push(bucket);
        }
        ProbHistogram {
            buckets: out,
            tuples: n,
        }
    }

    /// The buckets, in ascending value order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of buckets actually built (≤ the requested B).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of tuples summarised.
    pub fn tuples(&self) -> usize {
        self.tuples
    }

    /// Smallest and largest summarised value (`None` when empty).
    pub fn value_range(&self) -> Option<(f64, f64)> {
        match (self.buckets.first(), self.buckets.last()) {
            (Some(first), Some(last)) => Some((first.lo, last.hi)),
            _ => None,
        }
    }

    /// Expected count of tuples with `p ≥ min_prob`, with its bound.
    pub fn count(&self, min_prob: f64) -> Estimate {
        self.fold(None, min_prob, |b| b.exp_count).estimate()
    }

    /// Expected count restricted to values in `[lo, hi)`.
    pub fn count_in(&self, lo: f64, hi: f64, min_prob: f64) -> Estimate {
        self.fold(Some((lo, hi)), min_prob, |b| b.exp_count)
            .estimate()
    }

    /// Expected value sum of tuples with `p ≥ min_prob`, with its bound.
    pub fn sum(&self, min_prob: f64) -> Estimate {
        self.fold_sum(None, min_prob).estimate()
    }

    /// Expected value sum restricted to values in `[lo, hi)`.
    pub fn sum_in(&self, lo: f64, hi: f64, min_prob: f64) -> Estimate {
        self.fold_sum(Some((lo, hi)), min_prob).estimate()
    }

    /// Count mean, variance and Berry–Esseen moment of the domain
    /// restricted to `range` (when given, a half-open `[lo, hi)`) and to
    /// tuples with `p ≥ min_prob` — the inputs for a tail-probability
    /// normal approximation.
    pub fn count_moments(&self, range: Option<(f64, f64)>, min_prob: f64) -> CountMoments {
        CountMoments {
            mean: self.fold(range, min_prob, |b| b.exp_count).estimate(),
            variance: self.fold(range, min_prob, |b| b.var_count).estimate(),
            rho: self.fold(range, min_prob, |b| b.rho).estimate(),
        }
    }

    /// A coarser histogram with at most `buckets` buckets, made by
    /// merging adjacent buckets (payloads are additive, so every derived
    /// answer keeps a sound bound). Returns a clone when already coarse
    /// enough.
    pub fn merge_to(&self, buckets: usize) -> ProbHistogram {
        let buckets = buckets.max(1);
        let l = self.buckets.len();
        if l <= buckets {
            return self.clone();
        }
        let mut merged = Vec::with_capacity(buckets);
        for g in 0..buckets {
            let start = g * l / buckets;
            let end = (g + 1) * l / buckets;
            let mut bucket = self.buckets[start].clone();
            for other in &self.buckets[start + 1..end] {
                bucket.hi = other.hi;
                bucket.tuples += other.tuples;
                for (mine, theirs) in bucket.bands.iter_mut().zip(&other.bands) {
                    mine.absorb(theirs);
                }
            }
            merged.push(bucket);
        }
        ProbHistogram {
            buckets: merged,
            tuples: self.tuples,
        }
    }

    /// The shared fold behind every *per-tuple-nonnegative* quantity
    /// (expected count, count variance, Berry–Esseen moment): the band
    /// quantity accumulated over buckets against the value range and the
    /// probability threshold, as a guaranteed enclosure. Soundness leans
    /// on nonnegativity — any qualifying subset of a band contributes
    /// between 0 and the band total.
    fn fold(
        &self,
        range: Option<(f64, f64)>,
        min_prob: f64,
        pick: impl Fn(&BandStats) -> f64,
    ) -> Interval {
        let cut = ThresholdCut::of(min_prob);
        let mut acc = Interval::zero();
        for bucket in &self.buckets {
            let overlap = match range {
                None => Overlap::Full,
                Some((lo, hi)) => bucket_overlap(bucket, lo, hi),
            };
            if matches!(overlap, Overlap::Out) {
                continue;
            }
            let mut included = 0.0;
            for band in &bucket.bands[cut.full_from.min(PROB_BANDS)..] {
                included += pick(band);
            }
            let straddle = cut.straddle.map_or(0.0, |j| pick(&bucket.bands[j]));
            acc = acc.add(match overlap {
                // Straddled-band tuples contribute an unknown share of a
                // nonnegative total.
                Overlap::Full => Interval {
                    lo: included,
                    hi: included + straddle,
                    point: included + straddle / 2.0,
                },
                // A value cut keeps an unknown subset of everything.
                Overlap::Partial(f) => {
                    let hi = included + straddle;
                    Interval {
                        lo: 0.0,
                        hi,
                        point: (f * (included + straddle / 2.0)).clamp(0.0, hi),
                    }
                }
                Overlap::Out => unreachable!("skipped above"),
            });
        }
        acc
    }

    /// The fold behind `SUM`: per-tuple contributions `p·v` can be
    /// negative, so an unknown qualifying subset is *not* bounded by the
    /// band total. Instead each partially-qualified population is bounded
    /// through its value range: a subset with probability mass at most
    /// `C` and values in `[a, b]` has expected sum in
    /// `[min(0, C·a), max(0, C·b)]`.
    fn fold_sum(&self, range: Option<(f64, f64)>, min_prob: f64) -> Interval {
        let cut = ThresholdCut::of(min_prob);
        let mut acc = Interval::zero();
        for bucket in &self.buckets {
            let overlap = match range {
                None => Overlap::Full,
                Some((lo, hi)) => bucket_overlap(bucket, lo, hi),
            };
            if matches!(overlap, Overlap::Out) {
                continue;
            }
            let (mut inc_count, mut inc_sum) = (0.0, 0.0);
            for band in &bucket.bands[cut.full_from.min(PROB_BANDS)..] {
                inc_count += band.exp_count;
                inc_sum += band.exp_sum;
            }
            let (str_count, str_sum) = cut.straddle.map_or((0.0, 0.0), |j| {
                (bucket.bands[j].exp_count, bucket.bands[j].exp_sum)
            });
            acc = acc.add(match overlap {
                Overlap::Full => {
                    // Included bands qualify entirely; only the straddled
                    // band's unknown subset needs the value-range bound.
                    let lo = inc_sum + (str_count * bucket.lo).min(0.0);
                    let hi = inc_sum + (str_count * bucket.hi).max(0.0);
                    Interval {
                        lo,
                        hi,
                        point: (inc_sum + str_sum / 2.0).clamp(lo, hi),
                    }
                }
                Overlap::Partial(f) => {
                    let (a, b) = match range {
                        Some((q_lo, q_hi)) => (q_lo.max(bucket.lo), q_hi.min(bucket.hi)),
                        None => (bucket.lo, bucket.hi),
                    };
                    let mass = inc_count + str_count;
                    let lo = (mass * a).min(0.0);
                    let hi = (mass * b).max(0.0);
                    Interval {
                        lo,
                        hi,
                        point: (f * (inc_sum + str_sum / 2.0)).clamp(lo, hi),
                    }
                }
                Overlap::Out => unreachable!("skipped above"),
            });
        }
        acc
    }
}

/// Probability band index of `p` (see [`PROB_BANDS`]).
fn band_of(p: f64) -> usize {
    ((p * PROB_BANDS as f64).floor() as usize).min(PROB_BANDS - 1)
}

/// How `bucket` (members span the closed `[bucket.lo, bucket.hi]`)
/// relates to the query range `[lo, hi)`.
fn bucket_overlap(bucket: &Bucket, lo: f64, hi: f64) -> Overlap {
    if bucket.hi < lo || bucket.lo >= hi {
        return Overlap::Out;
    }
    if bucket.lo >= lo && bucket.hi < hi {
        return Overlap::Full;
    }
    let span = bucket.hi - bucket.lo;
    if span <= 0.0 {
        // A point bucket partially cut can only mean its single value
        // sits exactly at the open upper edge — excluded, but the Out
        // check above already handled that; the remaining case is the
        // closed lower edge, which is included.
        return Overlap::Full;
    }
    let from = lo.max(bucket.lo);
    let to = hi.min(bucket.hi);
    Overlap::Partial(((to - from) / span).clamp(0.0, 1.0))
}

/// Stable two-way merge of two pair runs already in
/// [`ProbHistogram::prepare_pairs`] order; on value ties every `base`
/// element precedes every `delta` element. Because a stable merge of two
/// stably-sorted runs equals the stable sort of their concatenation,
/// `from_sorted(&merge_sorted_pairs(&prepare_pairs(old), &prepare_pairs(new)))`
/// is **bit-identical** to `build(old ++ new)` — the incremental-synopsis
/// maintenance invariant (Cormode & Garofalakis-style delta merging with
/// an exact rebuild guarantee).
pub fn merge_sorted_pairs(base: &[(f64, f64)], delta: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(base.len() + delta.len());
    let (mut i, mut j) = (0, 0);
    while i < base.len() && j < delta.len() {
        // `<=` keeps base elements first on ties: exactly the order a
        // stable sort of the concatenated input would produce.
        if base[i].0.total_cmp(&delta[j].0).is_le() {
            out.push(base[i]);
            i += 1;
        } else {
            out.push(delta[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&base[i..]);
    out.extend_from_slice(&delta[j..]);
    out
}

/// Equi-depth base segment boundaries (indices into the sorted pairs),
/// snapped forward so equal values never split across segments. Always
/// starts with 0 and ends with `n`.
fn base_segments(pairs: &[(f64, f64)]) -> Vec<usize> {
    let n = pairs.len();
    let m = n.min(MAX_BASE_SEGMENTS);
    let mut bounds = vec![0usize];
    for s in 1..m {
        let mut at = s * n / m;
        // Snap forward past an equal-value run so a value never spans
        // two segments (keeps bucket ranges disjoint).
        while at < n && at > 0 && pairs[at].0 == pairs[at - 1].0 {
            at += 1;
        }
        if at > *bounds.last().expect("bounds never empty") && at < n {
            bounds.push(at);
        }
    }
    bounds.push(n);
    bounds
}

/// V-optimal bucket boundaries (tuple indices) via the classic dynamic
/// program over base segments: minimise the total probability-weighted
/// SSE of values, `Σ_buckets (Σwv² − (Σwv)²/Σw)` with `w = p`.
fn optimal_boundaries(pairs: &[(f64, f64)], segments: &[usize], buckets: usize) -> Vec<usize> {
    let m = segments.len() - 1; // number of base segments
    let b = buckets.min(m);
    // Prefix sums over base segments: s0 = Σw, s1 = Σwv, s2 = Σwv².
    let mut s0 = vec![0.0f64; m + 1];
    let mut s1 = vec![0.0f64; m + 1];
    let mut s2 = vec![0.0f64; m + 1];
    for s in 0..m {
        let (mut w, mut wv, mut wv2) = (0.0, 0.0, 0.0);
        for &(v, p) in &pairs[segments[s]..segments[s + 1]] {
            w += p;
            wv += p * v;
            wv2 += p * v * v;
        }
        s0[s + 1] = s0[s] + w;
        s1[s + 1] = s1[s] + wv;
        s2[s + 1] = s2[s] + wv2;
    }
    let cost = |j: usize, i: usize| -> f64 {
        let w = s0[i] - s0[j];
        if w <= 1e-300 {
            return 0.0;
        }
        let wv = s1[i] - s1[j];
        ((s2[i] - s2[j]) - wv * wv / w).max(0.0)
    };

    // dp[i] = best cost covering segments 0..i with the current number
    // of buckets; choice[level][i] = the split that achieved it.
    let mut dp: Vec<f64> = (0..=m).map(|i| cost(0, i)).collect();
    let mut choice = vec![vec![0usize; m + 1]; b];
    for level in 1..b {
        let mut next = vec![f64::INFINITY; m + 1];
        // With `level` splits made, at least `level` segments are used.
        for i in level..=m {
            let mut best = f64::INFINITY;
            let mut at = level;
            for j in level..i {
                let c = dp[j] + cost(j, i);
                if c < best {
                    best = c;
                    at = j;
                }
            }
            // Zero buckets so far (i == level means every prior bucket
            // is a single segment) still needs a valid split point.
            if i == level {
                best = dp[i];
                at = i;
            }
            next[i] = best;
            choice[level][i] = at;
        }
        next[0] = 0.0;
        dp = next;
    }

    // Backtrack the segment-space boundaries, then map to tuple indices.
    let mut seg_bounds = vec![m];
    let mut at = m;
    for level in (1..b).rev() {
        at = choice[level][at];
        seg_bounds.push(at);
    }
    seg_bounds.push(0);
    seg_bounds.reverse();
    seg_bounds.dedup();
    seg_bounds.into_iter().map(|s| segments[s]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(spec: &[(f64, f64)]) -> Vec<(f64, f64)> {
        spec.to_vec()
    }

    /// Brute-force expected count/sum over `p ≥ tau` and `v ∈ [lo, hi)`.
    fn brute(spec: &[(f64, f64)], tau: f64, range: Option<(f64, f64)>) -> (f64, f64) {
        let mut count = 0.0;
        let mut sum = 0.0;
        for &(v, p) in spec {
            let in_range = range.is_none_or(|(lo, hi)| v >= lo && v < hi);
            if p >= tau && in_range {
                count += p;
                sum += p * v;
            }
        }
        (count, sum)
    }

    #[test]
    fn totals_are_exact_without_cuts() {
        let spec = [(1.0, 0.5), (2.0, 0.25), (3.0, 0.8), (10.0, 0.33)];
        let h = ProbHistogram::build(pairs(&spec), 2);
        let (count, sum) = brute(&spec, 0.0, None);
        let c = h.count(0.0);
        let s = h.sum(0.0);
        assert!((c.value - count).abs() < 1e-12);
        assert_eq!(c.half_width, 0.0);
        assert!((s.value - sum).abs() < 1e-12);
        assert_eq!(s.half_width, 0.0);
        assert_eq!(h.tuples(), 4);
    }

    #[test]
    fn band_aligned_thresholds_are_exact() {
        let spec = [(1.0, 0.1), (2.0, 0.15), (3.0, 0.2), (4.0, 0.8), (5.0, 1.0)];
        let h = ProbHistogram::build(pairs(&spec), 3);
        for tau in [0.05, 0.1, 0.15, 0.2, 0.25, 0.8, 1.0] {
            let (count, sum) = brute(&spec, tau, None);
            let c = h.count(tau);
            let s = h.sum(tau);
            assert!(
                (c.value - count).abs() <= c.half_width + 1e-12,
                "τ={tau}: count {c} vs {count}"
            );
            assert!(
                (s.value - sum).abs() <= s.half_width + 1e-12,
                "τ={tau}: sum {s} vs {sum}"
            );
            if tau != 1.0 {
                assert_eq!(c.half_width, 0.0, "aligned τ={tau} must be exact");
            }
        }
    }

    #[test]
    fn off_grid_threshold_stays_within_bound() {
        let spec = [(1.0, 0.12), (2.0, 0.13), (3.0, 0.17), (4.0, 0.9)];
        let h = ProbHistogram::build(pairs(&spec), 2);
        let (count, _) = brute(&spec, 0.13, None);
        let c = h.count(0.13);
        assert!(
            (c.value - count).abs() <= c.half_width + 1e-12,
            "count {c} vs {count}"
        );
        assert!(c.half_width > 0.0, "an off-grid τ cannot be exact");
    }

    #[test]
    fn range_queries_bound_the_truth() {
        let spec: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64 * 0.5, ((i * 37) % 97) as f64 / 100.0))
            .collect();
        let h = ProbHistogram::build(spec.clone(), 8);
        for (lo, hi) in [(0.0, 10.0), (3.3, 17.9), (-5.0, 100.0), (20.0, 20.1)] {
            let (count, sum) = brute(&spec, 0.0, Some((lo, hi)));
            let c = h.count_in(lo, hi, 0.0);
            let s = h.sum_in(lo, hi, 0.0);
            assert!(
                (c.value - count).abs() <= c.half_width + 1e-9,
                "[{lo},{hi}): count {c} vs {count}"
            );
            assert!(
                (s.value - sum).abs() <= s.half_width + 1e-9,
                "[{lo},{hi}): sum {s} vs {sum}"
            );
        }
    }

    #[test]
    fn bucket_aligned_ranges_are_exact() {
        let spec: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, 0.5)).collect();
        let h = ProbHistogram::build(spec, 64);
        // Every value gets its own bucket, so any integer range is exact.
        let c = h.count_in(10.0, 20.0, 0.0);
        assert_eq!(c.half_width, 0.0);
        assert!((c.value - 5.0).abs() < 1e-12);
    }

    #[test]
    fn count_moments_cover_variance_and_rho() {
        let spec = [(1.0, 0.5), (2.0, 0.5), (3.0, 0.5)];
        let h = ProbHistogram::build(pairs(&spec), 2);
        let m = h.count_moments(None, 0.0);
        assert!((m.mean.value - 1.5).abs() < 1e-12);
        assert!((m.variance.value - 0.75).abs() < 1e-12);
        // Each tuple: p(1−p)(p²+(1−p)²) = 0.25·0.5 = 0.125.
        assert!((m.rho.value - 0.375).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_totals() {
        let spec: Vec<(f64, f64)> = (0..200)
            .map(|i| (i as f64, (i % 10) as f64 / 10.0))
            .collect();
        let h = ProbHistogram::build(spec, 32);
        let coarse = h.merge_to(5);
        assert!(coarse.bucket_count() <= 5);
        assert_eq!(coarse.tuples(), h.tuples());
        assert!((coarse.count(0.0).value - h.count(0.0).value).abs() < 1e-9);
        assert!((coarse.sum(0.0).value - h.sum(0.0).value).abs() < 1e-9);
        // Coarse enough already → clone.
        assert_eq!(h.merge_to(1000), h);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let h = ProbHistogram::build(Vec::new(), 8);
        assert_eq!(h.bucket_count(), 0);
        assert_eq!(h.count(0.0), Estimate::exact(0.0));
        assert_eq!(h.value_range(), None);

        let h = ProbHistogram::build(vec![(4.0, 0.5)], 8);
        assert_eq!(h.bucket_count(), 1);
        assert_eq!(h.value_range(), Some((4.0, 4.0)));
        assert!((h.count(0.0).value - 0.5).abs() < 1e-12);
        // Point bucket at the closed lower range edge is included…
        assert!((h.count_in(4.0, 5.0, 0.0).value - 0.5).abs() < 1e-12);
        // …and excluded at the open upper edge.
        assert_eq!(h.count_in(3.0, 4.0, 0.0).value, 0.0);
    }

    #[test]
    fn dp_is_no_worse_than_equal_splits_on_clustered_data() {
        // Two tight clusters far apart: the DP must put the boundary in
        // the gap, making cluster-aligned range queries exact.
        let mut spec = Vec::new();
        for i in 0..50 {
            spec.push((i as f64 * 0.01, 0.5));
            spec.push((1000.0 + i as f64 * 0.01, 0.5));
        }
        let h = ProbHistogram::build(spec, 2);
        assert_eq!(h.bucket_count(), 2);
        let c = h.count_in(0.0, 500.0, 0.0);
        assert_eq!(c.half_width, 0.0, "cluster boundary must be bucket-aligned");
        assert!((c.value - 25.0).abs() < 1e-12);
    }

    #[test]
    fn build_is_deterministic() {
        let spec: Vec<(f64, f64)> = (0..500)
            .map(|i| ((i * 97 % 313) as f64 * 0.25, ((i * 37) % 97) as f64 / 100.0))
            .collect();
        let a = ProbHistogram::build(spec.clone(), 16);
        let b = ProbHistogram::build(spec, 16);
        assert_eq!(a, b);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn bounds_always_contain_the_truth(
                spec in proptest::collection::vec((-100i64..100, 0u32..=100), 0..120),
                buckets in 1usize..12,
                tau_pct in 0u32..=100,
                range in (-120i64..120, 0i64..60),
            ) {
                let spec: Vec<(f64, f64)> = spec
                    .into_iter()
                    .map(|(v, p)| (v as f64 * 0.5, p as f64 / 100.0))
                    .collect();
                let tau = tau_pct as f64 / 100.0;
                let (lo, hi) = (range.0 as f64, (range.0 + range.1) as f64);
                let h = ProbHistogram::build(spec.clone(), buckets);
                for r in [None, Some((lo, hi))] {
                    let (count, sum) = brute(&spec, tau, r);
                    let (c, s) = match r {
                        None => (h.count(tau), h.sum(tau)),
                        Some((lo, hi)) => (h.count_in(lo, hi, tau), h.sum_in(lo, hi, tau)),
                    };
                    prop_assert!(
                        (c.value - count).abs() <= c.half_width + 1e-9,
                        "count {c} vs truth {count} (τ={tau}, range={r:?})"
                    );
                    prop_assert!(
                        (s.value - sum).abs() <= s.half_width + 1e-9,
                        "sum {s} vs truth {sum} (τ={tau}, range={r:?})"
                    );
                }
            }

            /// The incremental-maintenance invariant: merging a sorted
            /// delta into retained sorted pairs and rebuilding is
            /// bit-identical to a from-scratch build over the concatenated
            /// input — including ties, NaN-probability clamps and
            /// non-finite value drops.
            #[test]
            fn delta_merge_equals_from_scratch_build(
                base in proptest::collection::vec((-50.0f64..50.0, 0.0f64..1.0), 0..80),
                delta in proptest::collection::vec((-50.0f64..50.0, -0.5f64..1.5), 0..80),
                dup in 0usize..10,
                buckets in 1usize..12,
            ) {
                // Force value ties across the base/delta boundary so the
                // stable-merge tie rule is actually exercised.
                let mut delta = delta;
                for k in 0..dup.min(base.len()) {
                    delta.push((base[k].0, 0.25));
                }
                let mut whole = base.clone();
                whole.extend_from_slice(&delta);
                let scratch = ProbHistogram::build(whole, buckets);
                let merged = merge_sorted_pairs(
                    &ProbHistogram::prepare_pairs(base),
                    &ProbHistogram::prepare_pairs(delta),
                );
                let incremental = ProbHistogram::from_sorted(&merged, buckets);
                prop_assert_eq!(scratch, incremental);
            }
        }
    }
}
