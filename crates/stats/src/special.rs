//! Special functions: error function, gamma-family functions and their
//! inverses.
//!
//! Everything in this module is implemented from scratch (no external
//! numerics crates). The error function is evaluated through the regularized
//! incomplete gamma function, which yields close-to-machine-precision
//! accuracy over the whole real line; inverses use a rational initial guess
//! refined with Halley/Newton steps against the forward function.

/// Machine-level convergence tolerance used by the iterative routines.
const EPS: f64 = 1e-15;
/// Smallest representable scale used to guard the Lentz continued fraction.
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Natural logarithm of the gamma function, `ln Γ(x)`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to about
/// 15 significant digits for positive arguments, combined with the reflection
/// formula for `x < 0.5`.
///
/// # Panics
/// Panics if `x` is zero or a negative integer (poles of Γ).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(
        !(x <= 0.0 && x == x.floor()),
        "ln_gamma: pole at non-positive integer {x}"
    );
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let s = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x);
    }
    let xm1 = x - 1.0;
    let mut a = COEF[0];
    let t = xm1 + G + 0.5;
    for (i, c) in COEF.iter().enumerate().skip(1) {
        a += c / (xm1 + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (xm1 + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Switches between the series representation (for `x < a + 1`) and the
/// continued-fraction representation of the complement (otherwise), as is
/// standard practice.
///
/// Returns values clamped to `[0, 1]`.
pub fn gammp(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gammp: shape parameter must be positive, got {a}");
    assert!(x >= 0.0, "gammp: argument must be non-negative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// Evaluated directly by the continued fraction for large `x` to avoid the
/// catastrophic cancellation `1 − P` would suffer when `P` is close to one.
pub fn gammq(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gammq: shape parameter must be positive, got {a}");
    assert!(x >= 0.0, "gammq: argument must be non-negative, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_frac(a, x)
    }
}

/// Series representation of `P(a, x)`; valid and rapidly convergent for
/// `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum * (-x + a * x.ln() - gln).exp()).clamp(0.0, 1.0)
}

/// Modified Lentz continued-fraction evaluation of `Q(a, x)`; valid for
/// `x ≥ a + 1`.
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    ((-x + a * x.ln() - gln).exp() * h).clamp(0.0, 1.0)
}

/// Inverse of the regularized lower incomplete gamma function: returns `x`
/// such that `P(a, x) = p`.
///
/// Wilson–Hilferty (or small-`a` heuristic) initial guess refined by
/// safeguarded Halley iteration (Numerical Recipes style). Accurate to about
/// `1e-12` relative over the usual range.
pub fn inv_gammp(p: f64, a: f64) -> f64 {
    assert!(a > 0.0, "inv_gammp: shape parameter must be positive");
    assert!((0.0..=1.0).contains(&p), "inv_gammp: p must be in [0,1]");
    if p >= 1.0 {
        return 100.0f64.max(a + 100.0 * a.sqrt());
    }
    if p <= 0.0 {
        return 0.0;
    }
    let a1 = a - 1.0;
    let gln = ln_gamma(a);
    let (mut x, lna1, afac);
    if a > 1.0 {
        lna1 = a1.ln();
        afac = (a1 * (lna1 - 1.0) - gln).exp();
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut g = (2.307_53 + t * 0.270_61) / (1.0 + t * (0.992_29 + t * 0.044_81)) - t;
        if p < 0.5 {
            g = -g;
        }
        x = (a * (1.0 - 1.0 / (9.0 * a) - g / (3.0 * a.sqrt())).powi(3)).max(1e-3);
    } else {
        lna1 = 0.0;
        afac = 0.0;
        let t = 1.0 - a * (0.253 + a * 0.12);
        x = if p < t {
            (p / t).powf(1.0 / a)
        } else {
            1.0 - (1.0 - (p - t) / (1.0 - t)).ln()
        };
    }
    for _ in 0..14 {
        if x <= 0.0 {
            return 0.0;
        }
        let err = gammp(a, x) - p;
        let t = if a > 1.0 {
            afac * (-(x - a1) + a1 * (x.ln() - lna1)).exp()
        } else {
            (-x + a1 * x.ln() - gln).exp()
        };
        let u = err / t;
        // Halley step.
        let step = u / (1.0 - 0.5 * (u * (a1 / x - 1.0)).min(1.0));
        x -= step;
        if x <= 0.0 {
            x = 0.5 * (x + step);
        }
        if step.abs() < EPS * x {
            break;
        }
    }
    x
}

/// Error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`, accurate to near machine
/// precision (via the incomplete gamma function: `erf(x) = P(1/2, x²)`).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gammp(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// For positive arguments the upper incomplete gamma function is used
/// directly so the result stays accurate deep into the tail (`erfc(10) ≈
/// 2.1e-45` without underflow of intermediate terms).
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        gammq(0.5, x * x)
    } else {
        1.0 + gammp(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal probability density function `φ(x)`.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation (relative error < 1.15e-9) refined with a
/// single Halley step against [`std_normal_cdf`], bringing the result to
/// near machine precision.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)` (the function diverges at 0 and 1).
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "std_normal_quantile: p must be in (0,1), got {p}"
    );
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the high-precision CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// CDF of the chi-square distribution with `k` degrees of freedom.
pub fn chi_square_cdf(x: f64, k: f64) -> f64 {
    assert!(
        k > 0.0,
        "chi_square_cdf: degrees of freedom must be positive"
    );
    if x <= 0.0 {
        return 0.0;
    }
    gammp(k / 2.0, x / 2.0)
}

/// Quantile (inverse CDF) of the chi-square distribution with `k` degrees of
/// freedom: the value `x` with `P(X ≤ x) = p`.
///
/// Used for the ARCH-effect hypothesis test threshold `χ²_m(α)` of the
/// paper's Section VII-D (there `p = 1 − α`).
pub fn chi_square_quantile(p: f64, k: f64) -> f64 {
    assert!(
        k > 0.0,
        "chi_square_quantile: degrees of freedom must be positive"
    );
    2.0 * inv_gammp(p, k / 2.0)
}

/// Survival probability of a chi-square test statistic (the p-value of an
/// observed statistic `x` under `χ²_k`).
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    assert!(
        k > 0.0,
        "chi_square_sf: degrees of freedom must be positive"
    );
    if x <= 0.0 {
        return 1.0;
    }
    gammq(k / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-14);
        close(ln_gamma(2.0), 0.0, 1e-14);
        close(ln_gamma(3.0), std::f64::consts::LN_2, 1e-14);
        close(ln_gamma(6.0), 120.0f64.ln(), 1e-14);
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-14);
        // ln Γ(10.3) cross-checked against Stirling's series with the
        // 1/(12x) correction (13.482036786...).
        close(ln_gamma(10.3), 13.482_036_786_138_35, 1e-10);
    }

    #[test]
    fn ln_gamma_reflection_negative_half() {
        // Γ(-0.5) = -2√π, so ln|Γ(-0.5)| = ln(2√π).
        close(
            ln_gamma(-0.5),
            (2.0 * std::f64::consts::PI.sqrt()).ln(),
            1e-12,
        );
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn ln_gamma_pole_panics() {
        ln_gamma(-3.0);
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun table 7.1.
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-13);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-13);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-13);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-13);
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.209e-5; erfc(5) = 1.537e-12 — must not collapse to 0.
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-10);
        close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-8);
        assert!(erfc(10.0) > 0.0);
    }

    #[test]
    fn erf_erfc_complementarity() {
        for &x in &[-3.0, -1.5, -0.1, 0.0, 0.3, 1.0, 2.5] {
            close(erf(x) + erfc(x), 1.0, 1e-14);
        }
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        close(std_normal_cdf(0.0), 0.5, 1e-15);
        close(std_normal_cdf(1.959_963_984_540_054), 0.975, 1e-12);
        close(std_normal_cdf(-1.959_963_984_540_054), 0.025, 1e-12);
        // 3σ two-sided mass ≈ 0.9973 (quoted in the paper for κ = 3).
        let mass = std_normal_cdf(3.0) - std_normal_cdf(-3.0);
        close(mass, 0.997_300_203_936_740, 1e-12);
    }

    #[test]
    fn normal_quantile_round_trip() {
        for &p in &[1e-9, 1e-4, 0.01, 0.2, 0.5, 0.8, 0.975, 0.999_999] {
            let x = std_normal_quantile(p);
            close(std_normal_cdf(x), p, 1e-12);
        }
    }

    #[test]
    fn normal_quantile_known_points() {
        close(std_normal_quantile(0.5), 0.0, 1e-14);
        close(std_normal_quantile(0.975), 1.959_963_984_540_054, 1e-11);
        close(std_normal_quantile(0.841_344_746_068_543), 1.0, 1e-11);
    }

    #[test]
    fn gammp_gammq_sum_to_one() {
        for &a in &[0.3, 0.5, 1.0, 2.5, 10.0] {
            for &x in &[0.1, 0.5, 1.0, 3.0, 12.0] {
                close(gammp(a, x) + gammq(a, x), 1.0, 1e-13);
            }
        }
    }

    #[test]
    fn gammp_monotone_in_x() {
        let a = 1.7;
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.1;
            let p = gammp(a, x);
            assert!(p >= prev, "gammp must be non-decreasing in x");
            prev = p;
        }
    }

    #[test]
    fn inv_gammp_round_trip() {
        for &a in &[0.5, 1.0, 2.0, 4.0, 15.0] {
            for &p in &[0.001, 0.05, 0.3, 0.5, 0.9, 0.999] {
                let x = inv_gammp(p, a);
                close(gammp(a, x), p, 1e-9);
            }
        }
    }

    #[test]
    fn chi_square_reference_quantiles() {
        // Classic table values for α = 0.05 upper-tail critical points:
        // χ²_1(0.95) = 3.841, χ²_2(0.95) = 5.991, χ²_8(0.95) = 15.507.
        close(chi_square_quantile(0.95, 1.0), 3.841_458_820_694_124, 1e-8);
        close(chi_square_quantile(0.95, 2.0), 5.991_464_547_107_979, 1e-8);
        close(chi_square_quantile(0.95, 8.0), 15.507_313_055_865_453, 1e-8);
    }

    #[test]
    fn chi_square_cdf_quantile_round_trip() {
        for k in 1..=10 {
            let k = k as f64;
            for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
                let x = chi_square_quantile(p, k);
                close(chi_square_cdf(x, k), p, 1e-9);
            }
        }
    }

    #[test]
    fn chi_square_sf_complements_cdf() {
        for &x in &[0.5, 2.0, 7.3] {
            for &k in &[1.0, 3.0, 8.0] {
                close(chi_square_sf(x, k) + chi_square_cdf(x, k), 1.0, 1e-12);
            }
        }
    }
}
