//! Ordinary least squares regression.
//!
//! Two of the paper's procedures are regressions in disguise: the second
//! stage of Hannan–Rissanen ARMA estimation regresses the series on lagged
//! values and lagged residuals, and the ARCH-effect test (eq. 15) regresses
//! squared residuals on their own lags. Both designs are small (≤ ~20
//! columns), so solving the normal equations with a Cholesky factorisation —
//! falling back to a tiny ridge jitter when the design is collinear — is
//! accurate and fast.

use crate::error::StatsError;
use crate::linalg::{solve_spd, Matrix};

/// Result of an ordinary least squares fit.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Estimated coefficients, one per design column.
    pub beta: Vec<f64>,
    /// Residuals `y − X β̂`.
    pub residuals: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Total sum of squares of the centred response.
    pub tss: f64,
}

impl OlsFit {
    /// Coefficient of determination `R² = 1 − RSS/TSS` (0 when TSS is 0).
    pub fn r_squared(&self) -> f64 {
        if self.tss <= 0.0 {
            0.0
        } else {
            (1.0 - self.rss / self.tss).max(0.0)
        }
    }

    /// Unbiased residual variance `RSS / (n − k)`; `NaN` when `n ≤ k`.
    pub fn residual_variance(&self, n_params: usize) -> f64 {
        let dof = self.residuals.len() as i64 - n_params as i64;
        if dof <= 0 {
            f64::NAN
        } else {
            self.rss / dof as f64
        }
    }
}

/// Fits `y ≈ X β` by least squares. `x` is the `n×k` design matrix.
///
/// When the Gram matrix is numerically singular, a ridge jitter
/// (`λ = 1e-10 · tr(XᵀX)/k`) is added and the solve retried, growing λ by
/// 100× up to a bounded number of attempts; this handles the collinear
/// designs that occur when a sensor flat-lines inside a window.
pub fn ols(x: &Matrix, y: &[f64]) -> Result<OlsFit, StatsError> {
    let n = x.rows();
    let k = x.cols();
    if n != y.len() {
        return Err(StatsError::DimensionMismatch {
            expected: n,
            got: y.len(),
        });
    }
    if n < k || k == 0 {
        return Err(StatsError::InsufficientData { needed: k, got: n });
    }
    let mut gram = x.gram();
    let xty = x.tr_matvec(y);
    let trace: f64 = (0..k).map(|i| gram[(i, i)]).sum();
    let mut lambda = 0.0;
    let mut beta = None;
    for attempt in 0..6 {
        if attempt > 0 {
            let bump = if lambda == 0.0 {
                1e-10 * (trace / k as f64).max(1e-300)
            } else {
                lambda * 99.0 // total becomes 100× previous
            };
            for i in 0..k {
                gram[(i, i)] += bump;
            }
            lambda += bump;
        }
        match solve_spd(&gram, &xty) {
            Ok(b) => {
                beta = Some(b);
                break;
            }
            Err(_) => continue,
        }
    }
    let beta = beta.ok_or(StatsError::NotPositiveDefinite)?;
    let fitted = x.matvec(&beta);
    let residuals: Vec<f64> = y.iter().zip(&fitted).map(|(yi, fi)| yi - fi).collect();
    let rss: f64 = residuals.iter().map(|r| r * r).sum();
    let y_mean = crate::descriptive::mean(y);
    let tss: f64 = y.iter().map(|yi| (yi - y_mean) * (yi - y_mean)).sum();
    Ok(OlsFit {
        beta,
        residuals,
        rss,
        tss,
    })
}

/// Convenience builder: constructs a design matrix from columns.
///
/// # Panics
/// Panics if the columns have unequal lengths or no columns are supplied.
pub fn design_from_columns(cols: &[&[f64]]) -> Matrix {
    assert!(
        !cols.is_empty(),
        "design_from_columns: need at least one column"
    );
    let n = cols[0].len();
    assert!(
        cols.iter().all(|c| c.len() == n),
        "design_from_columns: ragged columns"
    );
    let k = cols.len();
    let mut data = vec![0.0; n * k];
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            data[i * k + j] = v;
        }
    }
    Matrix::from_vec(n, k, data)
}

/// Builds a design with a leading intercept column followed by the given
/// columns.
pub fn design_with_intercept(cols: &[&[f64]]) -> Matrix {
    let n = if cols.is_empty() { 0 } else { cols[0].len() };
    let ones = vec![1.0; n];
    let mut all: Vec<&[f64]> = Vec::with_capacity(cols.len() + 1);
    all.push(&ones);
    all.extend_from_slice(cols);
    design_from_columns(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 3 + 2 x, no noise.
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let design = design_with_intercept(&[&xs]);
        let fit = ols(&design, &ys).unwrap();
        assert!((fit.beta[0] - 3.0).abs() < 1e-10);
        assert!((fit.beta[1] - 2.0).abs() < 1e-10);
        assert!(fit.rss < 1e-18);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_two_predictor_relationship_with_noise() {
        let mut state = 42u64;
        let mut noise = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64 - 0.5) * 0.01
        };
        let x1: Vec<f64> = (0..400).map(|i| (i as f64 * 0.05).sin()).collect();
        let x2: Vec<f64> = (0..400).map(|i| (i as f64 * 0.013).cos()).collect();
        let ys: Vec<f64> = x1
            .iter()
            .zip(&x2)
            .map(|(a, b)| 1.5 - 0.7 * a + 0.4 * b + noise())
            .collect();
        let design = design_with_intercept(&[&x1, &x2]);
        let fit = ols(&design, &ys).unwrap();
        assert!((fit.beta[0] - 1.5).abs() < 0.01);
        assert!((fit.beta[1] + 0.7).abs() < 0.01);
        assert!((fit.beta[2] - 0.4).abs() < 0.01);
        assert!(fit.r_squared() > 0.99);
    }

    #[test]
    fn residuals_are_orthogonal_to_design() {
        let x1: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i as f64 * 0.31).sin()).collect();
        let design = design_with_intercept(&[&x1]);
        let fit = ols(&design, &ys).unwrap();
        // Xᵀ r must be ≈ 0 (normal equations).
        let xtr = design.tr_matvec(&fit.residuals);
        for v in xtr {
            assert!(v.abs() < 1e-8, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn collinear_design_still_solves_via_ridge() {
        // Two identical columns: singular Gram matrix.
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let design = design_with_intercept(&[&x, &x]);
        let fit = ols(&design, &ys).unwrap();
        // The split between the duplicated columns is arbitrary but the fit
        // itself must still be near-perfect.
        assert!(fit.rss < 1e-6, "rss = {}", fit.rss);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let design = design_with_intercept(&[&[1.0, 2.0, 3.0][..]]);
        assert!(matches!(
            ols(&design, &[1.0, 2.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn underdetermined_system_is_rejected() {
        let design = design_from_columns(&[&[1.0][..], &[2.0][..]]);
        assert!(matches!(
            ols(&design, &[1.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }
}
