//! Probability distributions used by the dynamic density metrics.
//!
//! The paper's metrics emit either a uniform density (uniform thresholding,
//! Section III) or a Gaussian density (variable thresholding and the
//! GARCH-family metrics, Sections III-V). Both are represented by the
//! [`Density`] enum so downstream components (Ω-view builder, σ-cache,
//! density distance) can handle either uniformly.

use crate::special::{std_normal_cdf, std_normal_pdf, std_normal_quantile};
use rand::Rng;

/// Gaussian distribution `N(mean, var)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a Gaussian with the given mean and *variance*.
    ///
    /// # Panics
    /// Panics if `var` is not strictly positive and finite.
    pub fn from_mean_var(mean: f64, var: f64) -> Self {
        assert!(
            var.is_finite() && var > 0.0,
            "Normal: variance must be positive and finite, got {var}"
        );
        Normal {
            mean,
            std: var.sqrt(),
        }
    }

    /// Creates a Gaussian with the given mean and standard deviation.
    pub fn from_mean_std(mean: f64, std: f64) -> Self {
        assert!(
            std.is_finite() && std > 0.0,
            "Normal: std must be positive and finite, got {std}"
        );
        Normal { mean, std }
    }

    /// Location parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Variance.
    pub fn var(&self) -> f64 {
        self.std * self.std
    }

    /// Probability density at `x` (paper eq. 3 with the metric's parameters).
    pub fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mean) / self.std) / self.std
    }

    /// Cumulative probability `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.std)
    }

    /// Quantile function; inverse of [`Normal::cdf`].
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std * std_normal_quantile(p)
    }

    /// Probability mass on the interval `[lo, hi]`.
    pub fn prob_in(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }

    /// Draws one sample (Box–Muller is avoided; we invert the CDF so that a
    /// single uniform drives a single normal deterministically, which keeps
    /// the synthetic dataset generators reproducible under seeding).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.quantile(u)
    }
}

/// Continuous uniform distribution on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "Uniform: need finite lo < hi, got [{lo}, {hi}]"
        );
        Uniform { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Mean `(lo + hi) / 2`.
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Variance `(hi − lo)² / 12`.
    pub fn var(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    /// Probability density at `x` (zero outside the support).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    /// Cumulative probability `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    /// Quantile function; inverse of [`Uniform::cdf`] on `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "Uniform::quantile: p in [0,1]");
        self.lo + p * (self.hi - self.lo)
    }

    /// Probability mass on the interval `[lo, hi]`.
    pub fn prob_in(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }
}

/// A probability density inferred by a dynamic density metric: the paper's
/// `p_t(R_t)` (Definition 1).
///
/// Uniform thresholding emits [`Density::Uniform`]; all other metrics emit
/// [`Density::Gaussian`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Density {
    /// Uniform uncertainty range centred on the expected true value.
    Uniform(Uniform),
    /// Gaussian `N(r̂_t, σ̂²_t)`.
    Gaussian(Normal),
}

impl Density {
    /// Expected value `E(R_t)` — the paper's expected true value `r̂_t`
    /// (Definition 3).
    pub fn mean(&self) -> f64 {
        match self {
            Density::Uniform(u) => u.mean(),
            Density::Gaussian(n) => n.mean(),
        }
    }

    /// Variance of the density.
    pub fn var(&self) -> f64 {
        match self {
            Density::Uniform(u) => u.var(),
            Density::Gaussian(n) => n.var(),
        }
    }

    /// Standard deviation of the density.
    pub fn std(&self) -> f64 {
        self.var().sqrt()
    }

    /// Density function value at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        match self {
            Density::Uniform(u) => u.pdf(x),
            Density::Gaussian(n) => n.pdf(x),
        }
    }

    /// Cumulative probability `P_t(R_t ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            Density::Uniform(u) => u.cdf(x),
            Density::Gaussian(n) => n.cdf(x),
        }
    }

    /// Probability of the event `R_t ∈ [lo, hi]` — the `ρ_ω` of the paper's
    /// probability value generation query (Definition 2).
    pub fn prob_in(&self, lo: f64, hi: f64) -> f64 {
        match self {
            Density::Uniform(u) => u.prob_in(lo, hi),
            Density::Gaussian(n) => n.prob_in(lo, hi),
        }
    }

    /// The probability integral transform of an observation under this
    /// density: `z = P_t(R_t ≤ r_t)` (Section II-B). Uniform on `(0,1)`
    /// exactly when this density matches the data-generating one.
    pub fn pit(&self, observation: f64) -> f64 {
        self.cdf(observation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_pdf_peak_and_symmetry() {
        let n = Normal::from_mean_var(2.0, 4.0);
        assert!((n.pdf(2.0) - 1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-12);
        assert!((n.pdf(1.0) - n.pdf(3.0)).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_quantile_round_trip() {
        let n = Normal::from_mean_std(-3.0, 2.5);
        for &p in &[0.01, 0.2, 0.5, 0.7, 0.99] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn normal_three_sigma_mass() {
        // κ = 3 bounds contain ≈ 0.9973 of the mass (paper, Algorithm 1).
        let n = Normal::from_mean_std(5.0, 1.7);
        let mass = n.prob_in(5.0 - 3.0 * 1.7, 5.0 + 3.0 * 1.7);
        assert!((mass - 0.9973).abs() < 1e-4);
    }

    #[test]
    fn normal_sampling_moments() {
        let n = Normal::from_mean_std(1.0, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20000).map(|_| n.sample(&mut rng)).collect();
        let m = crate::descriptive::mean(&xs);
        let s = crate::descriptive::sample_std(&xs);
        assert!((m - 1.0).abs() < 0.05, "sample mean {m}");
        assert!((s - 2.0).abs() < 0.05, "sample std {s}");
    }

    #[test]
    fn uniform_cdf_and_mass() {
        let u = Uniform::new(2.0, 6.0);
        assert_eq!(u.cdf(1.0), 0.0);
        assert_eq!(u.cdf(7.0), 1.0);
        assert!((u.cdf(4.0) - 0.5).abs() < 1e-12);
        assert!((u.prob_in(3.0, 5.0) - 0.5).abs() < 1e-12);
        assert!((u.mean() - 4.0).abs() < 1e-12);
        assert!((u.var() - 16.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn density_dispatch_consistency() {
        let g = Density::Gaussian(Normal::from_mean_var(0.0, 1.0));
        let u = Density::Uniform(Uniform::new(-1.0, 1.0));
        assert!((g.prob_in(-1.0, 1.0) - 0.6827).abs() < 1e-3);
        assert!((u.prob_in(-1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((g.pit(0.0) - 0.5).abs() < 1e-12);
        assert!((u.pit(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prob_in_empty_or_inverted_interval_is_zero() {
        let g = Density::Gaussian(Normal::from_mean_var(0.0, 1.0));
        assert_eq!(g.prob_in(1.0, 1.0), 0.0);
        assert_eq!(g.prob_in(2.0, -2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "variance must be positive")]
    fn normal_rejects_zero_variance() {
        Normal::from_mean_var(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_rejects_inverted_bounds() {
        Uniform::new(3.0, 1.0);
    }
}
