//! # tspdb-client
//!
//! The blocking native client for the tspdb wire protocol: a [`Client`]
//! wraps one TCP connection and exposes `query` / `prepare` / `execute`
//! returning the **same result types** in-process callers get —
//! [`QueryOutput`] with its `Rows` / `ProbRows` / `Worlds` / `Aggregate`
//! / `Explain` variants — and server-side failures as structured
//! [`DbError`]s, so code written against [`tspdb_probdb::Database`] ports
//! to the server by swapping the handle.
//!
//! The protocol is a strict request/response alternation, which is
//! exactly what a blocking client wants: every method writes one frame
//! and reads one frame. The one exception is TAIL: after
//! [`Client::tail`] registers a standing windowed query, the server
//! pushes one frame per closed window bucket, which the client surfaces
//! through [`Client::tail_next`] and transparently sets aside when one
//! arrives interleaved with an ordinary response.
//!
//! ## Quick start
//!
//! ```
//! use tspdb_client::Client;
//! use tspdb_core::SharedEngine;
//! use tspdb_server::{demo_config, Server, ServerConfig};
//!
//! // An in-process loopback server stands in for the real deployment.
//! let server = Server::bind(
//!     "127.0.0.1:0",
//!     SharedEngine::new(demo_config()),
//!     ServerConfig::default(),
//! )
//! .unwrap()
//! .spawn()
//! .unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.query("CREATE TABLE readings (t INT, r FLOAT)").unwrap();
//! client.query("INSERT INTO readings VALUES (1, 20.5), (2, 21.0)").unwrap();
//! let out = client.query("SELECT COUNT(*) FROM readings").unwrap();
//! assert_eq!(out.aggregate().unwrap().groups[0].values[0].value, 2.0);
//! client.close().unwrap();
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tspdb_probdb::plan::AggregateResult;
use tspdb_probdb::{DbError, QueryOutput};
use tspdb_wire::{read_frame, write_frame, Request, Response, StatementId, WireError};

pub use tspdb_wire::PROTOCOL_VERSION;

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or encoding failure — the connection is unusable.
    Wire(WireError),
    /// The server rejected the request with a database error; the session
    /// stays usable.
    Server(DbError),
    /// The server answered with a frame the protocol does not allow here.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire failure: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// Handle for a TAIL subscription, returned by [`Client::tail`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TailId(pub u64);

impl fmt::Display for TailId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One pushed TAIL result: a window bucket that closed.
#[derive(Debug, Clone, PartialEq)]
pub struct TailFrame {
    /// The subscription the frame belongs to.
    pub tail: TailId,
    /// Start of the closed window bucket.
    pub bucket: f64,
    /// The bucket's groups — byte-identical (by fingerprint) to running
    /// the equivalent one-shot windowed query and keeping this bucket.
    pub result: AggregateResult,
}

/// What [`Client::tail_next`] delivered.
#[derive(Debug, Clone, PartialEq)]
pub enum TailNotice {
    /// A window bucket closed.
    Frame(TailFrame),
    /// The server ended a subscription (source table dropped, standing
    /// query stopped executing); no more frames will arrive for it.
    Stopped {
        /// The subscription that ended.
        tail: TailId,
        /// Why the server ended it.
        reason: String,
    },
}

/// One blocking connection to a tspdb server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    server: String,
    /// TAIL pushes that arrived interleaved with an ordinary response —
    /// held for the next [`Client::tail_next`] call.
    pending_tail: VecDeque<TailNotice>,
}

impl Client {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
            },
        )?;
        match read_frame::<Response>(&mut stream)? {
            Response::Hello { version, server } if version == PROTOCOL_VERSION => Ok(Client {
                stream,
                server,
                pending_tail: VecDeque::new(),
            }),
            Response::Hello { version, .. } => Err(ClientError::Protocol(format!(
                "server speaks protocol version {version}, this client speaks {PROTOCOL_VERSION}"
            ))),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "handshake answered with {other:?}"
            ))),
        }
    }

    /// The server identification string from the handshake.
    pub fn server_info(&self) -> &str {
        &self.server
    }

    /// One request → one response; server-side `Error` frames become
    /// [`ClientError::Server`]. TAIL pushes that land ahead of the reply
    /// are set aside for [`Client::tail_next`] — they are identifiable by
    /// type (`TailFrame` is only ever pushed; a `TailStopped` carrying a
    /// reason is only ever pushed), so the alternation never miscounts.
    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, req)?;
        loop {
            match read_frame::<Response>(&mut self.stream)? {
                Response::TailFrame {
                    token,
                    bucket,
                    result,
                } => self.pending_tail.push_back(TailNotice::Frame(TailFrame {
                    tail: TailId(token),
                    bucket,
                    result,
                })),
                Response::TailStopped {
                    token,
                    reason: Some(reason),
                } => self.pending_tail.push_back(TailNotice::Stopped {
                    tail: TailId(token),
                    reason,
                }),
                Response::Error(e) => return Err(ClientError::Server(e)),
                other => return Ok(other),
            }
        }
    }

    /// Parses and executes one SQL statement on the server.
    ///
    /// Results come back as the same [`QueryOutput`] in-process callers
    /// get; database-side failures are [`ClientError::Server`] and leave
    /// the session usable.
    ///
    /// # Examples
    ///
    /// ```
    /// use tspdb_client::Client;
    /// use tspdb_core::SharedEngine;
    /// use tspdb_server::{demo_config, Server, ServerConfig};
    ///
    /// let server = Server::bind(
    ///     "127.0.0.1:0",
    ///     SharedEngine::new(demo_config()),
    ///     ServerConfig::default(),
    /// )
    /// .unwrap()
    /// .spawn()
    /// .unwrap();
    /// let mut client = Client::connect(server.addr()).unwrap();
    ///
    /// client.query("CREATE TABLE kv (k INT, v FLOAT)").unwrap();
    /// let out = client.query("SELECT * FROM kv").unwrap();
    /// assert_eq!(out.rows().unwrap().len(), 0);
    /// // A bad statement errors server-side but keeps the session alive.
    /// assert!(client.query("SELECT * FROM missing").is_err());
    /// client.close().unwrap();
    /// server.shutdown();
    /// ```
    pub fn query(&mut self, sql: &str) -> Result<QueryOutput, ClientError> {
        match self.round_trip(&Request::Query {
            sql: sql.to_string(),
        })? {
            Response::Result(out) => Ok(out),
            other => Err(ClientError::Protocol(format!(
                "Query answered with {other:?}"
            ))),
        }
    }

    /// Plans a read-only statement once on the server; the returned id
    /// replays it via [`Client::execute`] without re-parsing or
    /// re-planning.
    pub fn prepare(&mut self, sql: &str) -> Result<StatementId, ClientError> {
        match self.round_trip(&Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::Prepared { statement } => Ok(statement),
            other => Err(ClientError::Protocol(format!(
                "Prepare answered with {other:?}"
            ))),
        }
    }

    /// Executes a prepared statement.
    pub fn execute(&mut self, statement: StatementId) -> Result<QueryOutput, ClientError> {
        match self.round_trip(&Request::Execute { statement })? {
            Response::Result(out) => Ok(out),
            other => Err(ClientError::Protocol(format!(
                "Execute answered with {other:?}"
            ))),
        }
    }

    /// Discards a prepared statement on the server.
    pub fn close_statement(&mut self, statement: StatementId) -> Result<(), ClientError> {
        match self.round_trip(&Request::CloseStatement { statement })? {
            Response::Closed { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "CloseStatement answered with {other:?}"
            ))),
        }
    }

    /// Overrides the `WITH WORLDS` fork-join width for this session only
    /// (`0` = one thread per core). Latency-only — MC estimates are
    /// bit-identical at every width.
    pub fn set_worlds_threads(&mut self, threads: usize) -> Result<(), ClientError> {
        self.send_worlds_threads(Some(threads as u64))
    }

    /// Clears the session's width override so queries track the
    /// engine-wide default again.
    pub fn reset_worlds_threads(&mut self) -> Result<(), ClientError> {
        self.send_worlds_threads(None)
    }

    fn send_worlds_threads(&mut self, threads: Option<u64>) -> Result<(), ClientError> {
        match self.round_trip(&Request::SetWorldsThreads { threads })? {
            Response::WorldsThreadsSet { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "SetWorldsThreads answered with {other:?}"
            ))),
        }
    }

    /// Registers a `TAIL SELECT ... GROUP BY WINDOW(...)` standing query.
    ///
    /// The server pushes one [`TailFrame`] per window bucket as buckets
    /// close — starting with every bucket that had already closed when
    /// the subscription was made, so a late subscriber sees the same
    /// frame sequence an early one did. Consume frames with
    /// [`Client::tail_next`]; cancel with [`Client::tail_stop`]. The
    /// subscription also ends when the connection closes or when the
    /// standing query stops executing server-side (delivered as
    /// [`TailNotice::Stopped`]).
    pub fn tail(&mut self, sql: &str) -> Result<TailId, ClientError> {
        match self.round_trip(&Request::Tail {
            sql: sql.to_string(),
        })? {
            Response::TailStarted { token } => Ok(TailId(token)),
            other => Err(ClientError::Protocol(format!(
                "Tail answered with {other:?}"
            ))),
        }
    }

    /// Delivers the next TAIL push: a buffered one if an earlier call set
    /// one aside, otherwise blocks on the socket until a push arrives or
    /// `timeout` elapses (`None` = wait indefinitely).
    ///
    /// Returns `Ok(None)` on timeout. The timeout is only safe at frame
    /// boundaries: the server writes each frame in one burst, so a
    /// timeout mid-frame (which would desynchronise the stream) requires
    /// the network to stall inside a single small write.
    pub fn tail_next(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<TailNotice>, ClientError> {
        if let Some(notice) = self.pending_tail.pop_front() {
            return Ok(Some(notice));
        }
        self.stream.set_read_timeout(timeout)?;
        let frame = read_frame::<Response>(&mut self.stream);
        let restore = self.stream.set_read_timeout(None);
        let response = match frame {
            Ok(response) => response,
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                restore?;
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        restore?;
        match response {
            Response::TailFrame {
                token,
                bucket,
                result,
            } => Ok(Some(TailNotice::Frame(TailFrame {
                tail: TailId(token),
                bucket,
                result,
            }))),
            Response::TailStopped {
                token,
                reason: Some(reason),
            } => Ok(Some(TailNotice::Stopped {
                tail: TailId(token),
                reason,
            })),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "unsolicited frame while waiting for a TAIL push: {other:?}"
            ))),
        }
    }

    /// Cancels a TAIL subscription. Frames pushed before the server
    /// processed the stop may still be delivered by later
    /// [`Client::tail_next`] calls. Errors with
    /// [`ClientError::Server`] if the subscription is unknown — including
    /// when it lapsed server-side an instant earlier (the
    /// [`TailNotice::Stopped`] explaining why is then already queued).
    pub fn tail_stop(&mut self, tail: TailId) -> Result<(), ClientError> {
        match self.round_trip(&Request::TailStop { token: tail.0 })? {
            Response::TailStopped { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "TailStop answered with {other:?}"
            ))),
        }
    }

    /// Ends the session cleanly (the server acknowledges before closing).
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Close)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "Close answered with {other:?}"
            ))),
        }
    }
}
