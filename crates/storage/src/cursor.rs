//! Cursors over a relation's interior/leaf page chains.
//!
//! A relation on disk is an **interior chain** — pages whose payload is the
//! ordered list of leaf page ids — and the **leaf pages** those ids point
//! at, each holding `count` encoded tuples. [`PageCursor`] walks the
//! interior chain once up front and then hands out leaves in order;
//! [`TupleCursor`] decodes tuples out of those leaves one at a time.
//! Both read through the pager, so a warm scan never touches the disk.
//!
//! Cursors are generic over *how* they hold the pager: a borrowed
//! `&Pager` for short scans, or an owned `Arc<Pager>` when the cursor
//! must outlive the stack frame (the lazy [`crate::RelationStream`] the
//! query engine pulls tuples through).

use crate::codec::Reader;
use crate::error::StorageError;
use crate::page::{Page, PageKind};
use crate::pager::Pager;
use std::borrow::Borrow;
use std::collections::VecDeque;
use std::sync::Arc;
use tspdb_probdb::{Schema, Value};

/// Iterates the leaf pages of one relation, in tuple order.
#[derive(Debug)]
pub struct PageCursor<P: Borrow<Pager>> {
    pager: P,
    leaves: VecDeque<u64>,
}

impl<P: Borrow<Pager>> PageCursor<P> {
    /// Walks the interior chain rooted at `root` (0 = empty relation) and
    /// prepares to iterate its leaves.
    pub fn new(pager: P, root: u64) -> Result<Self, StorageError> {
        let mut leaves = VecDeque::new();
        let mut id = root;
        while id != 0 {
            let page = pager.borrow().get(id)?;
            if page.kind() != PageKind::Interior {
                return Err(StorageError::CorruptPage {
                    page: id,
                    reason: format!("expected an interior page, found {:?}", page.kind()),
                });
            }
            let mut r = Reader::new(page.payload(), id);
            for _ in 0..page.count() {
                leaves.push_back(r.take_u64()?);
            }
            id = page.next();
        }
        Ok(PageCursor { pager, leaves })
    }

    /// Number of leaves not yet returned.
    pub fn remaining_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// The next leaf page, or `None` when the relation is exhausted.
    pub fn next_leaf(&mut self) -> Result<Option<(u64, Arc<Page>)>, StorageError> {
        let Some(id) = self.leaves.pop_front() else {
            return Ok(None);
        };
        let page = self.pager.borrow().get(id)?;
        if page.kind() != PageKind::Leaf {
            return Err(StorageError::CorruptPage {
                page: id,
                reason: format!("expected a leaf page, found {:?}", page.kind()),
            });
        }
        Ok(Some((id, page)))
    }
}

/// One decoded tuple: the row plus its existence probability
/// (`None` for deterministic relations).
pub type DecodedTuple = (Vec<Value>, Option<f64>);

/// Decoding position inside the current leaf.
#[derive(Debug)]
struct LeafPos {
    id: u64,
    page: Arc<Page>,
    pos: usize,
    remaining: u32,
}

/// Streams the tuples of one relation: `(row, existence probability)` for
/// probabilistic relations, `(row, None)` for deterministic ones.
#[derive(Debug)]
pub struct TupleCursor<P: Borrow<Pager>> {
    pages: PageCursor<P>,
    schema: Schema,
    probabilistic: bool,
    current: Option<LeafPos>,
}

impl<P: Borrow<Pager>> TupleCursor<P> {
    /// A tuple cursor over the relation rooted at `root`.
    pub fn new(
        pager: P,
        root: u64,
        schema: Schema,
        probabilistic: bool,
    ) -> Result<Self, StorageError> {
        Ok(TupleCursor {
            pages: PageCursor::new(pager, root)?,
            schema,
            probabilistic,
            current: None,
        })
    }

    /// The schema tuples are decoded against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Whether tuples carry an existence probability.
    pub fn probabilistic(&self) -> bool {
        self.probabilistic
    }

    /// Decodes the next tuple, or `None` at end of relation.
    pub fn next_tuple(&mut self) -> Result<Option<DecodedTuple>, StorageError> {
        let arity = self.schema.arity();
        let probabilistic = self.probabilistic;
        loop {
            if let Some(cur) = &mut self.current {
                if cur.remaining > 0 {
                    let page = Arc::clone(&cur.page);
                    let mut r = Reader::new(&page.payload()[cur.pos..], cur.id);
                    let prob = if probabilistic {
                        Some(r.take_f64()?)
                    } else {
                        None
                    };
                    let mut row = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        row.push(r.take_value()?);
                    }
                    cur.pos += r.position();
                    cur.remaining -= 1;
                    return Ok(Some((row, prob)));
                }
                self.current = None;
            }
            match self.pages.next_leaf()? {
                Some((id, page)) => {
                    self.current = Some(LeafPos {
                        id,
                        remaining: page.count(),
                        page,
                        pos: 0,
                    });
                }
                None => return Ok(None),
            }
        }
    }
}
