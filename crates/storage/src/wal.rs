//! The write-ahead log: checksummed, sequence-numbered redo records with
//! fsync-on-commit, plus the fault-injection crash points the recovery
//! tests drive.
//!
//! ## Record layout
//!
//! The file opens with a 12-byte header (`"TSPDB-WAL"` padded magic +
//! format version), then zero or more records:
//!
//! ```text
//! [len: u32][crc: u32][payload: len bytes]     payload = [seq: u64][op]
//! ```
//!
//! `crc` is the CRC-32 of the payload. A record is **committed** iff it is
//! completely on disk with a valid checksum; the commit point is the
//! `fsync` after the record is written. Replay reads records until EOF or
//! the first damaged record — a torn tail from a crash mid-write — and
//! discards everything from the damage on, which is exactly the
//! uncommitted suffix.
//!
//! ## Sequence numbers and checkpoints
//!
//! Every record carries a monotonically increasing sequence number that
//! survives log resets. A checkpoint stores the sequence of the last
//! operation it includes in the database file's meta page; replay skips
//! records at or below that floor. This makes the
//! crash-between-checkpoint-rename-and-log-reset window safe: the stale
//! records are still in the log, but their sequence numbers identify them
//! as already applied.

use crate::codec::{crc32, Reader, Writer};
use crate::error::StorageError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write as _};
use std::path::Path;
use tspdb_probdb::{Schema, Value};

/// WAL file magic (9 bytes of name + 3 of padding → 12-byte header with
/// the version).
const WAL_MAGIC: &[u8; 8] = b"TSPDBWAL";

/// WAL format version.
const WAL_VERSION: u32 = 1;

/// Header length: magic + version.
const WAL_HEADER_LEN: u64 = 12;

/// One journaled write operation — the redo unit of recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A mutating SQL statement, journaled as its original source text.
    /// Replaying the text through the engine's write path is deterministic
    /// (witnessed end-to-end by the fingerprint differentials), so the
    /// statement itself is the redo record.
    Sql(String),
    /// A programmatic table load (`SharedEngine::load_series`): the
    /// finished table, schema and rows, since no SQL text exists for it.
    LoadTable {
        /// Table name.
        name: String,
        /// Column layout.
        schema: Schema,
        /// Row values (already schema-checked by the original load).
        rows: Vec<Vec<Value>>,
    },
    /// A batched append from the streaming ingest path: rows landing on an
    /// existing relation (whose schema is already on disk/in the catalog,
    /// so only the values travel). `probs` is present when the target is a
    /// probabilistic view — one existence probability per row.
    AppendRows {
        /// Target relation.
        table: String,
        /// Appended rows, in arrival order.
        rows: Vec<Vec<Value>>,
        /// Per-row existence probabilities (probabilistic views only).
        probs: Option<Vec<f64>>,
    },
}

impl JournalOp {
    /// Encodes the operation payload (without the sequence number).
    fn encode(&self, w: &mut Writer) {
        match self {
            JournalOp::Sql(sql) => {
                w.put_u8(1);
                w.put_str(sql);
            }
            JournalOp::LoadTable { name, schema, rows } => {
                w.put_u8(2);
                w.put_str(name);
                w.put_schema(schema);
                w.put_u64(rows.len() as u64);
                for row in rows {
                    for v in row {
                        w.put_value(v);
                    }
                }
            }
            JournalOp::AppendRows { table, rows, probs } => {
                w.put_u8(3);
                w.put_str(table);
                w.put_u64(rows.len() as u64);
                // Values are self-describing; only the per-row arity is
                // needed to re-slice the stream into rows.
                for row in rows {
                    w.put_u32(row.len() as u32);
                    for v in row {
                        w.put_value(v);
                    }
                }
                match probs {
                    Some(ps) => {
                        w.put_u8(1);
                        for &p in ps {
                            w.put_f64(p);
                        }
                    }
                    None => w.put_u8(0),
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<JournalOp, StorageError> {
        match r.take_u8()? {
            1 => Ok(JournalOp::Sql(r.take_str()?)),
            2 => {
                let name = r.take_str()?;
                let schema = r.take_schema()?;
                let n = r.take_u64()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let mut row = Vec::with_capacity(schema.arity());
                    for _ in 0..schema.arity() {
                        row.push(r.take_value()?);
                    }
                    rows.push(row);
                }
                Ok(JournalOp::LoadTable { name, schema, rows })
            }
            3 => {
                let table = r.take_str()?;
                let n = r.take_u64()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let arity = r.take_u32()? as usize;
                    let mut row = Vec::with_capacity(arity.min(1 << 10));
                    for _ in 0..arity {
                        row.push(r.take_value()?);
                    }
                    rows.push(row);
                }
                let probs = match r.take_u8()? {
                    0 => None,
                    _ => {
                        let mut ps = Vec::with_capacity(n.min(1 << 20));
                        for _ in 0..n {
                            ps.push(r.take_f64()?);
                        }
                        Some(ps)
                    }
                };
                Ok(JournalOp::AppendRows { table, rows, probs })
            }
            tag => Err(StorageError::CorruptPage {
                page: 0,
                reason: format!("unknown journal op tag {tag}"),
            }),
        }
    }
}

/// Where the fault-injection harness kills the write path. Each point
/// models one real crash window; after firing, the [`Wal`] is poisoned and
/// every later write fails with [`StorageError::Poisoned`] — the process
/// is "dead" as far as the storage layer is concerned, and the test
/// re-opens the directory to recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Dies before any record byte reaches the log: the write is lost
    /// entirely and recovery must yield the prior committed prefix.
    PreCommit,
    /// Dies halfway through the record: a torn tail that replay must
    /// detect (checksum/length) and discard.
    MidRecord,
    /// Dies after the record is committed (written + fsynced) but before
    /// the in-memory apply / any checkpoint: replay must redo it.
    PostCommit,
}

/// Result of replaying a WAL at open.
#[derive(Debug)]
pub struct WalReplay {
    /// Committed operations with sequence numbers above the checkpoint
    /// floor, in commit order.
    pub ops: Vec<(u64, JournalOp)>,
    /// Highest sequence number seen in the log (0 when empty).
    pub last_seq: u64,
    /// Records skipped as already covered by the checkpoint.
    pub skipped: usize,
    /// Whether a torn/damaged tail was truncated away.
    pub truncated_tail: bool,
}

/// The write-ahead log of one database directory.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Whether commits fsync (`true` everywhere except throwaway tests).
    fsync: bool,
    /// Commit fsyncs issued by the append paths — the observable that
    /// pins group commit down in tests: a batch of N operations through
    /// [`Wal::append_batch`] moves this by 1, not N.
    fsyncs: u64,
    crash_point: Option<CrashPoint>,
    poisoned: bool,
}

impl Wal {
    /// Opens (or creates) the log at `path` and replays it: committed
    /// records with sequence numbers above `floor` come back as redo
    /// operations; a torn tail is truncated so later appends start from a
    /// clean end of file.
    pub fn open(path: &Path, floor: u64, fsync: bool) -> Result<(Wal, WalReplay), StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
            header.extend_from_slice(WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_be_bytes());
            file.write_all(&header)?;
            file.sync_data()?;
        } else {
            let mut header = [0u8; WAL_HEADER_LEN as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut header)?;
            if &header[..8] != WAL_MAGIC {
                return Err(StorageError::BadDatabase("WAL magic mismatch".into()));
            }
            let version = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes"));
            if version != WAL_VERSION {
                return Err(StorageError::BadDatabase(format!(
                    "WAL format v{version}, this build reads v{WAL_VERSION}"
                )));
            }
        }

        // Replay: committed prefix only.
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        file.read_to_end(&mut bytes)?;
        let mut ops = Vec::new();
        let mut last_seq = 0u64;
        let mut skipped = 0usize;
        let mut pos = 0usize;
        let mut good_end = WAL_HEADER_LEN;
        let mut truncated_tail = false;
        while bytes.len() - pos >= 8 {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len < 8 || bytes.len() - pos - 8 < len {
                truncated_tail = true;
                break;
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                truncated_tail = true;
                break;
            }
            let mut r = Reader::new(payload, 0);
            let seq = r.take_u64()?;
            let op = JournalOp::decode(&mut r)?;
            last_seq = last_seq.max(seq);
            if seq > floor {
                ops.push((seq, op));
            } else {
                skipped += 1;
            }
            pos += 8 + len;
            good_end = WAL_HEADER_LEN + pos as u64;
        }
        truncated_tail |= bytes.len() > pos;
        if truncated_tail {
            // Drop the uncommitted suffix so the next append extends the
            // committed prefix instead of burying garbage mid-log.
            file.set_len(good_end)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good_end))?;

        Ok((
            Wal {
                file,
                fsync,
                fsyncs: 0,
                crash_point: None,
                poisoned: false,
            },
            WalReplay {
                ops,
                last_seq,
                skipped,
                truncated_tail,
            },
        ))
    }

    /// Arms a fault-injection crash point for the **next** append.
    pub fn set_crash_point(&mut self, point: Option<CrashPoint>) {
        self.crash_point = point;
    }

    /// Encodes one sequence-stamped record (length + checksum + payload).
    fn encode_record(seq: u64, op: &JournalOp) -> Vec<u8> {
        let mut payload = Writer::new();
        payload.put_u64(seq);
        op.encode(&mut payload);
        let payload = payload.into_bytes();
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        record.extend_from_slice(&crc32(&payload).to_be_bytes());
        record.extend_from_slice(&payload);
        record
    }

    /// Appends and commits one operation. On success the record is
    /// durable: written in full, checksummed, fsynced.
    pub fn append(&mut self, seq: u64, op: &JournalOp) -> Result<(), StorageError> {
        self.commit(Self::encode_record(seq, op))
    }

    /// Group commit: appends `ops` as consecutive records starting at
    /// `start_seq` and commits them with **one** fsync for the whole
    /// batch, instead of one per operation. Durability is all-or-tail:
    /// after a crash, replay recovers a prefix of the batch (the torn
    /// suffix is truncated), exactly as if the lost operations had never
    /// been submitted — which is the contract every caller of a streaming
    /// append already lives with.
    pub fn append_batch(&mut self, start_seq: u64, ops: &[JournalOp]) -> Result<(), StorageError> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut batch = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            batch.extend_from_slice(&Self::encode_record(start_seq + i as u64, op));
        }
        self.commit(batch)
    }

    /// Writes pre-encoded record bytes and commits them with one fsync,
    /// honouring an armed crash point (the torn-write point tears the
    /// buffer in half, wherever the record boundaries fall).
    fn commit(&mut self, bytes: Vec<u8>) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Poisoned);
        }
        match self.crash_point.take() {
            Some(CrashPoint::PreCommit) => {
                self.poisoned = true;
                return Err(StorageError::InjectedCrash("pre-commit"));
            }
            Some(CrashPoint::MidRecord) => {
                // Half the buffer reaches the disk — a torn write.
                self.file.write_all(&bytes[..bytes.len() / 2])?;
                self.file.sync_data()?;
                self.poisoned = true;
                return Err(StorageError::InjectedCrash("mid-record"));
            }
            Some(CrashPoint::PostCommit) => {
                self.file.write_all(&bytes)?;
                self.file.sync_data()?;
                self.poisoned = true;
                return Err(StorageError::InjectedCrash("post-commit"));
            }
            None => {}
        }

        self.file.write_all(&bytes)?;
        if self.fsync {
            self.file.sync_data()?;
            self.fsyncs += 1;
        }
        Ok(())
    }

    /// Commit fsyncs issued so far by the append paths.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Truncates the log back to its header (after a checkpoint has made
    /// its contents redundant).
    pub fn reset(&mut self) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Poisoned);
        }
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Bytes of record data currently in the log (header excluded).
    pub fn len_bytes(&self) -> Result<u64, StorageError> {
        Ok(self.file.metadata()?.len().saturating_sub(WAL_HEADER_LEN))
    }

    /// Whether an injected crash has poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Poisons the handle from outside — used by the checkpoint crash
    /// points, which simulate dying *between* WAL operations: after one
    /// fires, both logging and reset must refuse, exactly as if the
    /// process were gone.
    pub(crate) fn poison(&mut self) {
        self.poisoned = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal_path() -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "tspdb-wal-test-{}-{}.wal",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sql(n: u64) -> JournalOp {
        JournalOp::Sql(format!("INSERT INTO t VALUES ({n})"))
    }

    #[test]
    fn append_replay_round_trip() {
        let path = temp_wal_path();
        {
            let (mut wal, replay) = Wal::open(&path, 0, true).unwrap();
            assert!(replay.ops.is_empty());
            for seq in 1..=5 {
                wal.append(seq, &sql(seq)).unwrap();
            }
        }
        let (_, replay) = Wal::open(&path, 0, true).unwrap();
        assert_eq!(replay.ops.len(), 5);
        assert_eq!(replay.last_seq, 5);
        assert!(!replay.truncated_tail);
        assert_eq!(replay.ops[2].1, sql(3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn floor_skips_checkpointed_records() {
        let path = temp_wal_path();
        {
            let (mut wal, _) = Wal::open(&path, 0, true).unwrap();
            for seq in 1..=6 {
                wal.append(seq, &sql(seq)).unwrap();
            }
        }
        let (_, replay) = Wal::open(&path, 4, true).unwrap();
        assert_eq!(replay.skipped, 4);
        assert_eq!(
            replay.ops.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![5, 6]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_committed_prefix() {
        let path = temp_wal_path();
        {
            let (mut wal, _) = Wal::open(&path, 0, true).unwrap();
            wal.append(1, &sql(1)).unwrap();
            wal.append(2, &sql(2)).unwrap();
            wal.set_crash_point(Some(CrashPoint::MidRecord));
            assert!(matches!(
                wal.append(3, &sql(3)),
                Err(StorageError::InjectedCrash("mid-record"))
            ));
            assert!(matches!(
                wal.append(4, &sql(4)),
                Err(StorageError::Poisoned)
            ));
        }
        let (mut wal, replay) = Wal::open(&path, 0, true).unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(replay.ops.len(), 2);
        assert_eq!(replay.last_seq, 2);
        // The log is clean again: appends after recovery replay normally.
        wal.append(3, &sql(3)).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, 0, true).unwrap();
        assert_eq!(replay.ops.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pre_and_post_commit_crash_points() {
        let path = temp_wal_path();
        {
            let (mut wal, _) = Wal::open(&path, 0, true).unwrap();
            wal.set_crash_point(Some(CrashPoint::PreCommit));
            assert!(wal.append(1, &sql(1)).is_err());
        }
        let (_, replay) = Wal::open(&path, 0, true).unwrap();
        assert!(replay.ops.is_empty(), "pre-commit writes are lost");

        {
            let (mut wal, _) = Wal::open(&path, 0, true).unwrap();
            wal.set_crash_point(Some(CrashPoint::PostCommit));
            assert!(wal.append(1, &sql(1)).is_err());
        }
        let (_, replay) = Wal::open(&path, 0, true).unwrap();
        assert_eq!(replay.ops.len(), 1, "post-commit writes are durable");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_table_op_round_trips() {
        use tspdb_probdb::ColumnType;
        let path = temp_wal_path();
        let op = JournalOp::LoadTable {
            name: "raw".into(),
            schema: Schema::of(&[("t", ColumnType::Int), ("r", ColumnType::Float)]),
            rows: vec![
                vec![Value::Int(1), Value::Float(0.1 + 0.2)],
                vec![Value::Int(2), Value::Float(-0.0)],
            ],
        };
        {
            let (mut wal, _) = Wal::open(&path, 0, true).unwrap();
            wal.append(1, &op).unwrap();
        }
        let (_, replay) = Wal::open(&path, 0, true).unwrap();
        assert_eq!(replay.ops[0].1, op);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_rows_op_round_trips() {
        let path = temp_wal_path();
        let det = JournalOp::AppendRows {
            table: "raw".into(),
            rows: vec![
                vec![Value::Int(1), Value::Float(0.25)],
                vec![Value::Int(2), Value::Float(-0.0)],
            ],
            probs: None,
        };
        let prob = JournalOp::AppendRows {
            table: "pv".into(),
            rows: vec![vec![Value::Int(3)], vec![Value::Int(4)]],
            probs: Some(vec![0.5, 0.125]),
        };
        {
            let (mut wal, _) = Wal::open(&path, 0, true).unwrap();
            wal.append_batch(1, &[det.clone(), prob.clone()]).unwrap();
        }
        let (_, replay) = Wal::open(&path, 0, true).unwrap();
        assert_eq!(replay.ops, vec![(1, det), (2, prob)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_is_one_fsync_per_batch() {
        let path = temp_wal_path();
        let (mut wal, _) = Wal::open(&path, 0, true).unwrap();
        let ops: Vec<JournalOp> = (1..=64).map(sql).collect();
        wal.append_batch(1, &ops).unwrap();
        assert_eq!(wal.fsyncs(), 1, "64 batched ops must cost one fsync");
        for (i, op) in ops.iter().enumerate() {
            wal.append(65 + i as u64, op).unwrap();
        }
        assert_eq!(wal.fsyncs(), 65, "unbatched ops cost one fsync each");
        drop(wal);
        // Both spellings leave identical, fully-committed records behind.
        let (_, replay) = Wal::open(&path, 0, true).unwrap();
        assert_eq!(replay.ops.len(), 128);
        assert_eq!(replay.last_seq, 128);
        assert!(!replay.truncated_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_batch_recovers_a_prefix() {
        let path = temp_wal_path();
        {
            let (mut wal, _) = Wal::open(&path, 0, true).unwrap();
            wal.append_batch(1, &(1..=4).map(sql).collect::<Vec<_>>())
                .unwrap();
            wal.set_crash_point(Some(CrashPoint::MidRecord));
            assert!(wal
                .append_batch(5, &(5..=8).map(sql).collect::<Vec<_>>())
                .is_err());
        }
        let (_, replay) = Wal::open(&path, 0, true).unwrap();
        // The first batch is intact; the torn one recovers some strict
        // prefix (possibly empty — and when the tear happens to land on a
        // record boundary there is no tail to truncate, just fewer
        // records).
        assert!(replay.ops.len() >= 4 && replay.ops.len() < 8);
        assert_eq!(replay.ops[3].1, sql(4));
        for (i, (seq, op)) in replay.ops.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(*op, sql(*seq));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_wal_path();
        {
            let (mut wal, _) = Wal::open(&path, 0, true).unwrap();
            wal.append(1, &sql(1)).unwrap();
            assert!(wal.len_bytes().unwrap() > 0);
            wal.reset().unwrap();
            assert_eq!(wal.len_bytes().unwrap(), 0);
            wal.append(2, &sql(2)).unwrap();
        }
        let (_, replay) = Wal::open(&path, 0, true).unwrap();
        assert_eq!(
            replay.ops.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![2]
        );
        std::fs::remove_file(&path).unwrap();
    }
}
