//! Byte-level encoding shared by pages and the write-ahead log.
//!
//! Same conventions as the wire protocol ([`tspdb_wire`]'s codec, kept
//! deliberately in sync by idiom, not by dependency): big-endian integers,
//! **floats as IEEE-754 bit patterns** (`f64::to_bits` / `from_bits`, so a
//! tuple read back from disk is bit-identical to the one written — the
//! determinism contract depends on this), length-prefixed UTF-8 strings.
//!
//! [`tspdb_wire`]: https://docs.rs/tspdb-wire

use crate::error::StorageError;
use tspdb_probdb::{ColumnType, Schema, Value};

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum of page images
/// and WAL records. Table-driven, table built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// An append-only byte buffer with typed writers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` as its bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string longer than u32::MAX"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends one cell value: a type tag then the payload.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.put_u8(0);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(1);
                self.put_f64(*f);
            }
            Value::Text(s) => {
                self.put_u8(2);
                self.put_str(s);
            }
        }
    }

    /// Appends a schema: arity, then `(name, type tag)` per column.
    pub fn put_schema(&mut self, schema: &Schema) {
        self.put_u32(schema.arity() as u32);
        for c in 0..schema.arity() {
            let (name, ty) = schema.column(c);
            self.put_str(name);
            self.put_u8(type_tag(ty));
        }
    }
}

/// Column-type tag used on disk.
pub fn type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Text => 2,
    }
}

/// A cursor over encoded bytes with typed readers. Every under-run is a
/// corruption error — the caller supplies the offending page id for the
/// report.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    page: u64,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice; `page` labels corruption errors.
    pub fn new(buf: &'a [u8], page: u64) -> Self {
        Reader { buf, pos: 0, page }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads `n` raw bytes verbatim.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        self.take(n)
    }

    fn corrupt<T>(&self, reason: impl Into<String>) -> Result<T, StorageError> {
        Err(StorageError::CorruptPage {
            page: self.page,
            reason: reason.into(),
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return self.corrupt(format!("need {n} bytes, {} remain", self.remaining()));
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a big-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a big-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, StorageError> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            return self.corrupt(format!("string announces {len} bytes"));
        }
        let bytes = self.take(len)?;
        match String::from_utf8(bytes.to_vec()) {
            Ok(s) => Ok(s),
            Err(_) => self.corrupt("string is not valid UTF-8"),
        }
    }

    /// Reads one cell value.
    pub fn take_value(&mut self) -> Result<Value, StorageError> {
        match self.take_u8()? {
            0 => Ok(Value::Int(self.take_i64()?)),
            1 => Ok(Value::Float(self.take_f64()?)),
            2 => Ok(Value::Text(self.take_str()?)),
            tag => self.corrupt(format!("unknown value tag {tag}")),
        }
    }

    /// Reads a schema written by [`Writer::put_schema`].
    pub fn take_schema(&mut self) -> Result<Schema, StorageError> {
        let arity = self.take_u32()? as usize;
        if arity > self.remaining() {
            return self.corrupt(format!("schema announces {arity} columns"));
        }
        let mut columns = Vec::with_capacity(arity);
        for _ in 0..arity {
            let name = self.take_str()?;
            let ty = match self.take_u8()? {
                0 => ColumnType::Int,
                1 => ColumnType::Float,
                2 => ColumnType::Text,
                tag => return self.corrupt(format!("unknown column type tag {tag}")),
            };
            columns.push((name, ty));
        }
        Ok(Schema::new(columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn values_round_trip_bit_exactly() {
        let values = [
            Value::Int(i64::MIN),
            Value::Int(42),
            Value::Float(0.1 + 0.2), // not representable exactly — bits must survive
            Value::Float(f64::NEG_INFINITY),
            Value::Float(-0.0),
            Value::Text("héllo".into()),
            Value::Text(String::new()),
        ];
        let mut w = Writer::new();
        for v in &values {
            w.put_value(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, 0);
        for v in &values {
            let got = r.take_value().unwrap();
            match (v, &got) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, &got),
            }
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn schema_round_trips() {
        let schema = Schema::of(&[
            ("t", ColumnType::Int),
            ("r", ColumnType::Float),
            ("tag", ColumnType::Text),
        ]);
        let mut w = Writer::new();
        w.put_schema(&schema);
        let bytes = w.into_bytes();
        let got = Reader::new(&bytes, 0).take_schema().unwrap();
        assert_eq!(schema, got);
    }

    #[test]
    fn truncated_input_is_a_corruption_error() {
        let mut w = Writer::new();
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 1], 7);
        assert!(matches!(
            r.take_str(),
            Err(StorageError::CorruptPage { page: 7, .. })
        ));
    }
}
