//! Fixed-size pages with typed headers.
//!
//! Every page is [`PAGE_SIZE`] bytes: a 24-byte header followed by the
//! payload. The header carries the page *kind*, a CRC-32 of the whole
//! image (checksum field zeroed during computation), the id of the next
//! page in this page's chain (`0` = end of chain — page 0 is always the
//! meta page, so the id is free to act as the null sentinel), an entry
//! count and the number of payload bytes in use:
//!
//! ```text
//! offset  size  field
//!      0     1  kind        (1=Meta, 2=Catalog, 3=Interior, 4=Leaf)
//!      1     3  reserved    (zero)
//!      4     4  checksum    CRC-32 of the page image, this field as zero
//!      8     8  next        page id of the chain successor, 0 = none
//!     16     4  count       entries in the payload
//!     20     4  used        payload bytes in use
//!     24  4072  payload
//! ```

use crate::codec::crc32;
use crate::error::StorageError;

/// Size of every page, header included.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of header before the payload.
pub const HEADER_LEN: usize = 24;

/// Payload capacity of one page.
pub const PAYLOAD_LEN: usize = PAGE_SIZE - HEADER_LEN;

/// Typed page kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Page 0: database magic, version, page count, catalog root.
    Meta,
    /// Catalog directory: one entry per stored relation.
    Catalog,
    /// Interior node of a relation: the ordered list of its leaf page ids.
    Interior,
    /// Leaf node: encoded tuples.
    Leaf,
}

impl PageKind {
    fn tag(self) -> u8 {
        match self {
            PageKind::Meta => 1,
            PageKind::Catalog => 2,
            PageKind::Interior => 3,
            PageKind::Leaf => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<PageKind> {
        match tag {
            1 => Some(PageKind::Meta),
            2 => Some(PageKind::Catalog),
            3 => Some(PageKind::Interior),
            4 => Some(PageKind::Leaf),
            _ => None,
        }
    }
}

/// One fixed-size page image.
#[derive(Debug, Clone)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page of the given kind.
    pub fn new(kind: PageKind) -> Self {
        let mut page = Page {
            buf: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("PAGE_SIZE"),
        };
        page.buf[0] = kind.tag();
        page
    }

    /// Reconstructs a page from its on-disk image, verifying the checksum
    /// and the kind tag. `id` labels corruption errors.
    pub fn from_image(id: u64, image: &[u8]) -> Result<Page, StorageError> {
        if image.len() != PAGE_SIZE {
            return Err(StorageError::CorruptPage {
                page: id,
                reason: format!("short image: {} bytes", image.len()),
            });
        }
        let mut buf: Box<[u8; PAGE_SIZE]> = image
            .to_vec()
            .into_boxed_slice()
            .try_into()
            .expect("PAGE_SIZE");
        let stored = u32::from_be_bytes(buf[4..8].try_into().expect("4 bytes"));
        buf[4..8].fill(0);
        let computed = crc32(&buf[..]);
        if stored != computed {
            return Err(StorageError::CorruptPage {
                page: id,
                reason: format!("checksum {stored:#010x} != computed {computed:#010x}"),
            });
        }
        buf[4..8].copy_from_slice(&stored.to_be_bytes());
        let page = Page { buf };
        if PageKind::from_tag(page.buf[0]).is_none() {
            return Err(StorageError::CorruptPage {
                page: id,
                reason: format!("unknown page kind {}", page.buf[0]),
            });
        }
        Ok(page)
    }

    /// The page kind.
    pub fn kind(&self) -> PageKind {
        PageKind::from_tag(self.buf[0]).expect("kind validated at construction")
    }

    /// Id of the next page in this chain (`0` = end).
    pub fn next(&self) -> u64 {
        u64::from_be_bytes(self.buf[8..16].try_into().expect("8 bytes"))
    }

    /// Sets the chain successor.
    pub fn set_next(&mut self, next: u64) {
        self.buf[8..16].copy_from_slice(&next.to_be_bytes());
    }

    /// Number of entries in the payload.
    pub fn count(&self) -> u32 {
        u32::from_be_bytes(self.buf[16..20].try_into().expect("4 bytes"))
    }

    /// Sets the entry count.
    pub fn set_count(&mut self, count: u32) {
        self.buf[16..20].copy_from_slice(&count.to_be_bytes());
    }

    /// Payload bytes in use.
    pub fn used(&self) -> usize {
        u32::from_be_bytes(self.buf[20..24].try_into().expect("4 bytes")) as usize
    }

    /// The in-use payload slice.
    pub fn payload(&self) -> &[u8] {
        &self.buf[HEADER_LEN..HEADER_LEN + self.used().min(PAYLOAD_LEN)]
    }

    /// Replaces the payload (must fit [`PAYLOAD_LEN`]) and records its
    /// length.
    pub fn set_payload(&mut self, payload: &[u8]) {
        assert!(
            payload.len() <= PAYLOAD_LEN,
            "payload exceeds page capacity"
        );
        self.buf[HEADER_LEN..HEADER_LEN + payload.len()].copy_from_slice(payload);
        self.buf[HEADER_LEN + payload.len()..].fill(0);
        self.buf[20..24].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    }

    /// Seals the page for writing: computes and stores the checksum, then
    /// returns the full image.
    pub fn sealed_image(&mut self) -> &[u8; PAGE_SIZE] {
        self.buf[4..8].fill(0);
        let crc = crc32(&self.buf[..]);
        self.buf[4..8].copy_from_slice(&crc.to_be_bytes());
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_reload_round_trips() {
        let mut page = Page::new(PageKind::Leaf);
        page.set_next(17);
        page.set_count(3);
        page.set_payload(b"abc def ghi");
        let image = page.sealed_image().to_vec();
        let got = Page::from_image(5, &image).unwrap();
        assert_eq!(got.kind(), PageKind::Leaf);
        assert_eq!(got.next(), 17);
        assert_eq!(got.count(), 3);
        assert_eq!(got.payload(), b"abc def ghi");
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut page = Page::new(PageKind::Catalog);
        page.set_payload(b"entry");
        let mut image = page.sealed_image().to_vec();
        image[HEADER_LEN + 2] ^= 0x40;
        assert!(matches!(
            Page::from_image(9, &image),
            Err(StorageError::CorruptPage { page: 9, .. })
        ));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut page = Page::new(PageKind::Leaf);
        page.buf[0] = 99; // corrupt the kind, then re-seal so the CRC passes
        let image = page.sealed_image().to_vec();
        assert!(matches!(
            Page::from_image(1, &image),
            Err(StorageError::CorruptPage { .. })
        ));
    }

    #[test]
    fn oversized_payload_panics() {
        let mut page = Page::new(PageKind::Leaf);
        let too_big = vec![0u8; PAYLOAD_LEN + 1];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            page.set_payload(&too_big);
        }));
        assert!(result.is_err());
    }
}
