//! Storage-layer errors.

use std::fmt;
use tspdb_probdb::DbError;

/// Everything that can go wrong under the pager and the write-ahead log.
#[derive(Debug)]
pub enum StorageError {
    /// The operating system said no.
    Io(std::io::Error),
    /// A page read back from disk failed its checksum or carried an
    /// unexpected kind — the file is damaged or not a tspdb database.
    CorruptPage {
        /// Page id that failed verification.
        page: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// The database file's meta page is not a tspdb database (bad magic,
    /// unsupported version, mismatched page size).
    BadDatabase(String),
    /// A tuple is too large to fit a single leaf page.
    TupleTooLarge {
        /// Encoded size of the offending tuple.
        size: usize,
        /// Payload capacity of a leaf page.
        max: usize,
    },
    /// The relation is not present in the on-disk catalog.
    UnknownRelation(String),
    /// A fault-injection crash point fired (tests only): the write path
    /// stopped exactly where a real crash would have, and the storage
    /// handle is poisoned from here on.
    InjectedCrash(&'static str),
    /// A previous injected crash poisoned this handle; re-open the
    /// directory to recover.
    Poisoned,
    /// The database substrate rejected recovered tuples — the on-disk
    /// state disagrees with its own catalog entry.
    Db(DbError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O: {e}"),
            StorageError::CorruptPage { page, reason } => {
                write!(f, "page {page} is corrupt: {reason}")
            }
            StorageError::BadDatabase(msg) => write!(f, "not a tspdb database: {msg}"),
            StorageError::TupleTooLarge { size, max } => {
                write!(
                    f,
                    "tuple of {size} bytes exceeds the {max}-byte leaf capacity"
                )
            }
            StorageError::UnknownRelation(name) => {
                write!(f, "relation {name:?} is not in the on-disk catalog")
            }
            StorageError::InjectedCrash(point) => {
                write!(f, "injected crash at {point}")
            }
            StorageError::Poisoned => {
                write!(
                    f,
                    "storage handle poisoned by an injected crash; re-open to recover"
                )
            }
            StorageError::Db(e) => write!(f, "recovered tuples rejected: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<DbError> for StorageError {
    fn from(e: DbError) -> Self {
        StorageError::Db(e)
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e.to_string())
    }
}
