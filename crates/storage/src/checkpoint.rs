//! Incremental, page-granular checkpoints: the types and page encoders
//! behind [`crate::Storage::checkpoint_incremental`].
//!
//! ## Shadow-write protocol
//!
//! The database file keeps **two meta slots** (pages 0 and 1); the live
//! one is the valid slot with the higher epoch. A checkpoint never
//! overwrites any page reachable from the live meta — new leaf, interior
//! and catalog pages go to *free* slots (pages reachable from neither
//! meta, recomputed from the live catalog each time) and then to fresh
//! pages past the end of the file. Only after those writes are durably
//! fsynced does the checkpoint write the new meta — carrying the advanced
//! WAL floor — to the *inactive* slot and fsync again. That single page
//! write is the commit point: a crash anywhere earlier recovers the old
//! state bit-exactly (plus WAL replay), a crash after it recovers the new
//! state (stale WAL records below the floor are skipped on replay), and
//! no interleaving yields a torn mix.
//!
//! ## Cost model
//!
//! An [`CheckpointSource::Append`] reuses the old leaf chain as an
//! unchanged prefix and writes only leaves for the appended suffix, a
//! fresh interior chain and a fresh catalog chain — O(dirty), not
//! O(relation). [`CheckpointSource::Keep`] writes nothing for the
//! relation at all. Pages that were reachable only from the *previous*
//! epoch become free slots for the *next* checkpoint, so space is
//! reclaimed one checkpoint late, never sooner than a reader holding the
//! old snapshot could still need it.

use crate::codec::Writer;
use crate::error::StorageError;
use crate::page::{Page, PageKind, PAYLOAD_LEN};
use crate::CatalogEntry;
use std::collections::BTreeSet;
use tspdb_probdb::Relation;

/// Fault-injection points inside [`crate::Storage::checkpoint_incremental`]
/// (tests only). Each simulates the process dying at one window of the
/// shadow-write protocol; after it fires the handle is poisoned, exactly
/// like the WAL's [`crate::CrashPoint`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCrashPoint {
    /// Die mid-way through the first data-page write: half a page reaches
    /// a free slot. Recovery must not even notice — the slot is
    /// unreachable from the live meta.
    MidPage,
    /// Die after every data page is written and fsynced but before the
    /// meta slot advances the WAL floor. Recovery serves the *old* state
    /// plus WAL replay.
    AfterPages,
    /// Die after the meta slot is committed but before the WAL reset.
    /// Recovery serves the *new* state and skips the stale WAL records at
    /// or below the floor.
    AfterMeta,
}

/// One relation's contribution to an incremental checkpoint.
#[derive(Debug, Clone, Copy)]
pub enum CheckpointSource<'a> {
    /// The on-disk copy is already current: carry its catalog entry and
    /// page layout forward, writing nothing.
    Keep(&'a str),
    /// The relation grew by appends only: rows past the on-disk row count
    /// are written to new leaves, the old leaf chain is reused as the
    /// unchanged prefix. Degrades to [`CheckpointSource::Keep`] when
    /// nothing was appended, and to a full rewrite when the on-disk copy
    /// is missing or incompatible (schema change, shrunk row count).
    Append(&'a Relation),
    /// Write the relation from scratch (dropped + re-created, rewritten
    /// in place, or first checkpoint).
    Rewrite(&'a Relation),
}

/// What one incremental checkpoint did, for cost assertions and
/// diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Pages written to the database file, including the meta slot.
    pub pages_written: u64,
    /// Relations carried forward untouched.
    pub relations_kept: usize,
    /// Relations that wrote only an appended suffix.
    pub relations_appended: usize,
    /// Relations written from scratch.
    pub relations_rewritten: usize,
}

/// The page ids one relation occupies on disk — everything reachable from
/// its catalog entry's root.
#[derive(Debug, Clone, Default)]
pub struct RelationLayout {
    /// Leaf page ids, in tuple order.
    pub leaves: Vec<u64>,
    /// Interior-chain page ids, in chain order (empty for an empty
    /// relation).
    pub interior: Vec<u64>,
}

impl RelationLayout {
    /// All page ids of the layout.
    pub fn pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.leaves.iter().chain(self.interior.iter()).copied()
    }
}

/// Hands out destination page ids for shadow writes: first the free slots
/// inside the file (ascending), then fresh pages past the end.
#[derive(Debug)]
pub(crate) struct SlotAllocator {
    free: std::vec::IntoIter<u64>,
    next: u64,
}

impl SlotAllocator {
    /// `reachable` is every page id the live meta can reach (both meta
    /// slots included); `file_pages` the physical page count.
    pub(crate) fn new(reachable: &BTreeSet<u64>, file_pages: u64) -> SlotAllocator {
        let free: Vec<u64> = (2..file_pages)
            .filter(|id| !reachable.contains(id))
            .collect();
        SlotAllocator {
            free: free.into_iter(),
            next: file_pages,
        }
    }

    pub(crate) fn alloc(&mut self) -> u64 {
        self.free.next().unwrap_or_else(|| {
            let id = self.next;
            self.next += 1;
            id
        })
    }

    /// Physical page count after all allocations so far (≥ the count the
    /// allocator was built with).
    pub(crate) fn file_pages(&self) -> u64 {
        self.next
    }
}

/// Encodes `relation`'s rows from index `from` onwards into sealed leaf
/// pages (greedy packing; page ids are assigned by the caller).
pub(crate) fn encode_leaves(relation: &Relation, from: usize) -> Result<Vec<Page>, StorageError> {
    let n_rows = match relation {
        Relation::Deterministic(t) => t.len(),
        Relation::Probabilistic(t) => t.len(),
    };
    let mut leaves: Vec<Page> = Vec::new();
    let mut payload = Writer::new();
    let mut count = 0u32;
    let seal = |payload: &mut Writer, count: &mut u32, leaves: &mut Vec<Page>| {
        let mut leaf = Page::new(PageKind::Leaf);
        leaf.set_payload(&std::mem::take(payload).into_bytes());
        leaf.set_count(*count);
        *count = 0;
        leaves.push(leaf);
    };
    for i in from..n_rows {
        let mut tuple = Writer::new();
        match relation {
            Relation::Deterministic(t) => {
                for v in &t.rows()[i] {
                    tuple.put_value(v);
                }
            }
            Relation::Probabilistic(t) => {
                tuple.put_f64(t.probs()[i]);
                for v in &t.rows()[i] {
                    tuple.put_value(v);
                }
            }
        }
        let tuple = tuple.into_bytes();
        if tuple.len() > PAYLOAD_LEN {
            return Err(StorageError::TupleTooLarge {
                size: tuple.len(),
                max: PAYLOAD_LEN,
            });
        }
        if payload.len() + tuple.len() > PAYLOAD_LEN {
            seal(&mut payload, &mut count, &mut leaves);
        }
        payload.put_raw(&tuple);
        count += 1;
    }
    if count > 0 {
        seal(&mut payload, &mut count, &mut leaves);
    }
    Ok(leaves)
}

/// Builds the interior chain over `leaf_ids` — unlinked; the caller
/// assigns ids and sets the `next` pointers.
pub(crate) fn build_interior_pages(leaf_ids: &[u64]) -> Vec<Page> {
    let ids_per_page = PAYLOAD_LEN / 8;
    leaf_ids
        .chunks(ids_per_page)
        .map(|chunk| {
            let mut interior = Page::new(PageKind::Interior);
            let mut w = Writer::new();
            for id in chunk {
                w.put_u64(*id);
            }
            interior.set_payload(&w.into_bytes());
            interior.set_count(chunk.len() as u32);
            interior
        })
        .collect()
}

/// Builds the catalog chain over `entries` (greedy packing) — unlinked;
/// the caller assigns ids and sets the `next` pointers. Entries must come
/// in catalog (name) order.
pub(crate) fn build_catalog_pages<'a>(
    entries: impl Iterator<Item = &'a CatalogEntry>,
) -> Result<Vec<Page>, StorageError> {
    let mut pages: Vec<Page> = Vec::new();
    let mut payload = Writer::new();
    let mut count = 0u32;
    for entry in entries {
        let mut enc = Writer::new();
        enc.put_str(&entry.name);
        enc.put_u8(u8::from(entry.probabilistic));
        enc.put_schema(&entry.schema);
        enc.put_u64(entry.root);
        enc.put_u64(entry.rows);
        let enc = enc.into_bytes();
        if enc.len() > PAYLOAD_LEN {
            return Err(StorageError::BadDatabase(format!(
                "catalog entry for {:?} exceeds one page",
                entry.name
            )));
        }
        if payload.len() + enc.len() > PAYLOAD_LEN {
            let mut p = Page::new(PageKind::Catalog);
            p.set_payload(&std::mem::take(&mut payload).into_bytes());
            p.set_count(count);
            count = 0;
            pages.push(p);
        }
        payload.put_raw(&enc);
        count += 1;
    }
    if count > 0 {
        let mut p = Page::new(PageKind::Catalog);
        p.set_payload(&payload.into_bytes());
        p.set_count(count);
        pages.push(p);
    }
    Ok(pages)
}

/// Builds one sealed-ready meta page (format v2).
pub(crate) fn build_meta_page(epoch: u64, n_pages: u64, catalog_root: u64, wal_floor: u64) -> Page {
    let mut meta = Writer::new();
    meta.put_raw(crate::DB_MAGIC);
    meta.put_u32(crate::DB_VERSION);
    meta.put_u32(crate::page::PAGE_SIZE as u32);
    meta.put_u64(epoch);
    meta.put_u64(n_pages);
    meta.put_u64(catalog_root);
    meta.put_u64(wal_floor);
    let mut page = Page::new(PageKind::Meta);
    page.set_payload(&meta.into_bytes());
    page
}
