//! # tspdb-storage
//!
//! The persistent storage engine under the `tspdb` workspace: paged
//! on-disk tables behind an immutable-snapshot page cache, a checksummed
//! write-ahead log, and crash recovery that replays the committed prefix
//! on boot.
//!
//! A database directory holds two files:
//!
//! * `tspdb.db` — fixed-size pages ([`page::PAGE_SIZE`] bytes): **two
//!   meta slots** (pages 0 and 1, the valid one with the higher epoch
//!   wins), a catalog chain (one entry per relation), and per relation an
//!   interior chain listing its leaf pages and the leaves holding encoded
//!   tuples. Checkpoints are **incremental and shadow-paged**
//!   ([`Storage::checkpoint_incremental`]): new pages go only to slots
//!   unreachable from the live meta, and one meta-slot write is the
//!   atomic commit point — which is what lets the page cache hold
//!   immutable [`std::sync::Arc`] snapshots, the same design as the
//!   engine's σ-cache.
//! * `tspdb.wal` — the redo log. Every mutating operation is appended and
//!   fsynced **before** it is applied in memory; recovery replays
//!   committed records newer than the last checkpoint.
//!
//! ## Determinism across media
//!
//! Tuples are encoded with floats as IEEE-754 bit patterns and replayed
//! writes go through the same engine write path as live ones, so a tuple
//! is bit-identical whether it came from the page cache, a cold disk
//! read, a lazy [`RelationStream`], or a post-crash WAL replay — and
//! therefore so is every query fingerprint, at any thread count, for a
//! fixed query + seed.
//!
//! ## Crash safety
//!
//! The commit point of a write is the WAL fsync. The commit point of a
//! checkpoint is the meta-slot write — issued only after every shadowed
//! data page is durably fsynced, and carrying the WAL floor so replay
//! skips records the checkpoint already contains (see [`checkpoint`] for
//! the full protocol). Fault-injection crash points ([`CrashPoint`] on
//! the WAL path, [`CheckpointCrashPoint`] inside the checkpoint) cut the
//! write path at each of these windows in tests.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod codec;
pub mod cursor;
pub mod error;
pub mod page;
pub mod pager;
pub mod wal;

pub use checkpoint::{CheckpointCrashPoint, CheckpointSource, CheckpointStats, RelationLayout};
pub use error::StorageError;
pub use pager::{Pager, PagerStats, DEFAULT_CACHE_PAGES};
pub use wal::{CrashPoint, JournalOp};

use checkpoint::SlotAllocator;
use codec::Reader;
use cursor::{DecodedTuple, TupleCursor};
use page::{PageKind, PAGE_SIZE};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use tspdb_probdb::{DbError, ProbTable, Relation, ScanSource, Schema, Table, TupleStream, Value};

/// Database file magic.
pub(crate) const DB_MAGIC: &[u8; 8] = b"TSPDB-DB";

/// Database file format version (v2: dual meta slots + shadow-paged
/// incremental checkpoints; v1 files were rewritten wholesale and are not
/// read by this build).
pub(crate) const DB_VERSION: u32 = 2;

/// Number of meta slots at the head of the database file.
const META_SLOTS: u64 = 2;

/// Debug hook: sleep this many milliseconds inside
/// [`Storage::checkpoint_incremental`], between the data-page fsync and
/// the meta-slot commit. CI's recovery smoke test uses it to land a
/// `kill -9` inside an in-flight checkpoint.
pub const CHECKPOINT_HOLD_ENV: &str = "TSPDB_CHECKPOINT_HOLD_MS";

/// Name of the paged database file inside a data directory.
pub const DB_FILE: &str = "tspdb.db";

/// Name of the write-ahead log inside a data directory.
pub const WAL_FILE: &str = "tspdb.wal";

/// Name of the engine metadata sidecar inside a data directory (free-form
/// text the upper layer owns — e.g. density-view lineage specs persisted
/// across checkpoints). Written atomically (tmp + rename + dir fsync).
pub const META_FILE: &str = "tspdb.meta";

/// Tuning knobs of a [`Storage`].
#[derive(Debug, Clone, Copy)]
pub struct StorageOptions {
    /// Page-cache capacity in pages.
    pub cache_pages: usize,
    /// Whether commits fsync. Leave `true` anywhere durability matters;
    /// tests that hammer the write path may turn it off.
    pub fsync: bool,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            cache_pages: DEFAULT_CACHE_PAGES,
            fsync: true,
        }
    }
}

/// One relation's entry in the on-disk catalog.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Relation name.
    pub name: String,
    /// Whether tuples carry existence probabilities.
    pub probabilistic: bool,
    /// Column layout.
    pub schema: Schema,
    /// Interior-chain root page id (0 = no tuples).
    pub root: u64,
    /// Tuple count, recorded for integrity checking on scan.
    pub rows: u64,
}

/// What [`Storage::open`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// Committed WAL operations newer than the checkpoint, in commit
    /// order. The caller must replay them through its normal write path
    /// (without re-logging) before serving queries.
    pub ops: Vec<JournalOp>,
    /// Relations present in the checkpointed database file.
    pub checkpoint_relations: usize,
    /// WAL records skipped as already covered by the checkpoint.
    pub skipped: usize,
    /// Whether a torn WAL tail (crash mid-write) was truncated away.
    pub truncated_tail: bool,
}

/// The live meta slot's contents.
#[derive(Debug, Clone, Copy)]
struct MetaInfo {
    epoch: u64,
    n_pages: u64,
    catalog_root: u64,
    wal_floor: u64,
}

/// The persistent storage engine of one database directory.
///
/// Thread-safe: scans read immutable page snapshots through the shared
/// pager; `log` serialises appends on the WAL mutex; checkpoints
/// serialise on their own mutex and shadow-write only pages unreachable
/// from the live meta, so concurrent reads of the *current* state stay
/// valid throughout. One caveat is inherited by anything that streams
/// lazily ([`Storage::scan_stream`]): a stream outliving **two**
/// checkpoints may observe reused slots; the engine layer prevents this
/// by excluding checkpoints while queries run (its catalog RwLock).
#[derive(Debug)]
pub struct Storage {
    dir: PathBuf,
    options: StorageOptions,
    pager: Arc<Pager>,
    /// Read-write handle to the database file, used only by checkpoints
    /// for in-place shadow writes (the pager's handle stays read-only).
    db_write: Mutex<File>,
    directory: RwLock<BTreeMap<String, CatalogEntry>>,
    /// Page layout of each cataloged relation — the reachable set the
    /// shadow allocator must not touch, and the leaf-chain prefix appends
    /// reuse.
    layouts: RwLock<BTreeMap<String, RelationLayout>>,
    /// Page ids of the live catalog chain (reachable, like the layouts).
    catalog_pages: Mutex<Vec<u64>>,
    /// Epoch of the live meta slot; the next checkpoint commits epoch+1
    /// to slot `(epoch+1) % 2`.
    epoch: AtomicU64,
    wal: Mutex<wal::Wal>,
    /// Sequence number of the last record appended to the WAL (0 = none
    /// since the floor).
    last_seq: AtomicU64,
    /// Lifetime count of database-file pages written by checkpoints —
    /// the observable behind the O(dirty)-not-O(total) cost claim.
    pages_written: AtomicU64,
    /// Armed fault-injection point for the next checkpoint (tests only).
    checkpoint_crash: Mutex<Option<CheckpointCrashPoint>>,
    /// Serialises checkpoints against each other.
    ckpt_serial: Mutex<()>,
}

impl Storage {
    /// Opens (creating if absent) the database directory and runs
    /// recovery: verifies and loads the checkpointed file, replays the
    /// WAL's committed suffix, truncates any torn tail. The returned
    /// [`Recovery::ops`] must be replayed by the caller before use.
    pub fn open(dir: &Path, options: StorageOptions) -> Result<(Storage, Recovery), StorageError> {
        std::fs::create_dir_all(dir)?;
        let db_path = dir.join(DB_FILE);
        if !db_path.exists() {
            // Fresh directory: both meta slots, epoch 0, empty catalog.
            write_fresh_db(&db_path.with_extension("db.tmp"))?;
            std::fs::rename(db_path.with_extension("db.tmp"), &db_path)?;
            sync_dir(dir)?;
        }

        let loaded = load_db_file(&db_path, options.cache_pages)?;
        let db_write = OpenOptions::new().read(true).write(true).open(&db_path)?;
        let (wal, replay) =
            wal::Wal::open(&dir.join(WAL_FILE), loaded.meta.wal_floor, options.fsync)?;
        let last_seq = replay.last_seq.max(loaded.meta.wal_floor);
        let recovery = Recovery {
            ops: replay.ops.into_iter().map(|(_, op)| op).collect(),
            checkpoint_relations: loaded.directory.len(),
            skipped: replay.skipped,
            truncated_tail: replay.truncated_tail,
        };
        Ok((
            Storage {
                dir: dir.to_path_buf(),
                options,
                pager: Arc::new(loaded.pager),
                db_write: Mutex::new(db_write),
                directory: RwLock::new(loaded.directory),
                layouts: RwLock::new(loaded.layouts),
                catalog_pages: Mutex::new(loaded.catalog_pages),
                epoch: AtomicU64::new(loaded.meta.epoch),
                wal: Mutex::new(wal),
                last_seq: AtomicU64::new(last_seq),
                pages_written: AtomicU64::new(0),
                checkpoint_crash: Mutex::new(None),
                ckpt_serial: Mutex::new(()),
            },
            recovery,
        ))
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Journals one operation: appends it to the WAL and fsyncs. Returns
    /// only once the record is durable — callers apply the operation in
    /// memory **after** this returns (redo logging).
    pub fn log(&self, op: &JournalOp) -> Result<u64, StorageError> {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        let seq = self.last_seq.load(Ordering::Relaxed) + 1;
        wal.append(seq, op)?;
        self.last_seq.store(seq, Ordering::Relaxed);
        Ok(seq)
    }

    /// Journals a batch of operations with **group commit**: all records
    /// are appended and committed under one WAL fsync instead of one per
    /// operation — the amortisation that makes a streamed append workload
    /// affordable. Returns the sequence number of the batch's last record.
    /// Durability is prefix-shaped: a crash mid-batch recovers some prefix
    /// of it (the torn suffix never happened).
    pub fn log_batch(&self, ops: &[JournalOp]) -> Result<u64, StorageError> {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        let start = self.last_seq.load(Ordering::Relaxed) + 1;
        wal.append_batch(start, ops)?;
        let last = start + ops.len().saturating_sub(1) as u64;
        if !ops.is_empty() {
            self.last_seq.store(last, Ordering::Relaxed);
        }
        Ok(last)
    }

    /// Sequence number of the last journaled record — the cheap dirty
    /// check: a relation whose last-touched sequence is at or below the
    /// checkpoint floor has nothing new to checkpoint.
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Relaxed)
    }

    /// Commit fsyncs issued by the WAL so far (observable for the group
    /// commit tests: N batched ops move this by 1).
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).fsyncs()
    }

    /// Arms a fault-injection crash point for the next [`Storage::log`]
    /// call (tests only). After it fires the handle is poisoned.
    pub fn set_crash_point(&self, point: Option<CrashPoint>) {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .set_crash_point(point);
    }

    /// Arms a fault-injection point inside the next checkpoint (tests
    /// only). After it fires the handle is poisoned.
    pub fn set_checkpoint_crash_point(&self, point: Option<CheckpointCrashPoint>) {
        *self
            .checkpoint_crash
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = point;
    }

    /// Whether an injected crash has poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_poisoned()
    }

    /// Bytes of redo records currently in the WAL (drives auto-checkpoint
    /// thresholds upstream).
    pub fn wal_bytes(&self) -> Result<u64, StorageError> {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len_bytes()
    }

    /// Lifetime count of database-file pages written by checkpoints. An
    /// append-only workload moves this by O(appended rows) per
    /// checkpoint, not O(database).
    pub fn pages_written(&self) -> u64 {
        self.pages_written.load(Ordering::Relaxed)
    }

    /// Writes a **full** checkpoint: every relation in `relations` is
    /// rewritten from scratch, everything else is dropped from the
    /// catalog. Kept for callers that don't track dirtiness;
    /// [`Storage::checkpoint_incremental`] is the page-granular path.
    pub fn checkpoint(&self, relations: &[Relation]) -> Result<CheckpointStats, StorageError> {
        let sources: Vec<CheckpointSource<'_>> =
            relations.iter().map(CheckpointSource::Rewrite).collect();
        self.checkpoint_incremental(&sources)
    }

    /// Writes an incremental, shadow-paged checkpoint.
    ///
    /// `sources` names every relation the new catalog should contain —
    /// relations absent from it are dropped. [`CheckpointSource::Keep`]
    /// writes nothing; [`CheckpointSource::Append`] writes only the
    /// appended suffix (new leaves + a fresh interior chain);
    /// [`CheckpointSource::Rewrite`] writes the relation whole. The
    /// catalog chain and one meta slot are always rewritten.
    ///
    /// Protocol (see [`checkpoint`] module docs): data pages go to slots
    /// unreachable from the live meta and are fsynced; only then is the
    /// new meta — carrying the WAL floor — committed to the inactive slot
    /// and fsynced; only then is the WAL reset. A crash at any point
    /// recovers bit-exactly to the old or the new state.
    ///
    /// The caller must guarantee the sources reflect every operation
    /// logged so far (i.e. hold its write lock across this call).
    pub fn checkpoint_incremental(
        &self,
        sources: &[CheckpointSource<'_>],
    ) -> Result<CheckpointStats, StorageError> {
        let _serial = self.ckpt_serial.lock().unwrap_or_else(|e| e.into_inner());
        if self.is_poisoned() {
            return Err(StorageError::Poisoned);
        }
        let floor = self.last_seq.load(Ordering::Relaxed);
        let old_dir = self
            .directory
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let old_layouts = self
            .layouts
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let old_catalog = self
            .catalog_pages
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();

        // Classify every source, degrading appends that can't reuse the
        // on-disk prefix (missing, schema change, shrunk) to rewrites and
        // no-op appends to keeps.
        enum Work<'a> {
            Keep,
            Fresh { rel: &'a Relation, from: usize },
        }
        let mut stats = CheckpointStats::default();
        let mut plan: BTreeMap<String, Work<'_>> = BTreeMap::new();
        for source in sources {
            match source {
                CheckpointSource::Keep(name) => {
                    if !old_dir.contains_key(*name) {
                        return Err(StorageError::UnknownRelation((*name).to_string()));
                    }
                    plan.insert((*name).to_string(), Work::Keep);
                }
                CheckpointSource::Append(rel) => {
                    let (name, schema, probabilistic, len) = relation_parts(rel);
                    let work = match old_dir.get(name) {
                        Some(e)
                            if e.schema == *schema
                                && e.probabilistic == probabilistic
                                && len as u64 >= e.rows =>
                        {
                            if len as u64 == e.rows {
                                Work::Keep
                            } else {
                                Work::Fresh {
                                    rel,
                                    from: e.rows as usize,
                                }
                            }
                        }
                        _ => Work::Fresh { rel, from: 0 },
                    };
                    plan.insert(name.to_string(), work);
                }
                CheckpointSource::Rewrite(rel) => {
                    plan.insert(
                        relation_parts(rel).0.to_string(),
                        Work::Fresh { rel, from: 0 },
                    );
                }
            }
        }

        // Shadow allocator: everything the live meta reaches is off
        // limits; what's left inside the file is free, then the file
        // grows.
        let mut reachable: BTreeSet<u64> = (0..META_SLOTS).collect();
        reachable.extend(old_catalog.iter().copied());
        for layout in old_layouts.values() {
            reachable.extend(layout.pages());
        }
        let mut alloc = SlotAllocator::new(&reachable, self.pager.n_pages());

        // Encode the new state: suffix leaves + fresh interior chains per
        // dirty relation, then one fresh catalog chain over all entries.
        let mut writes: Vec<(u64, page::Page)> = Vec::new();
        let mut new_dir: BTreeMap<String, CatalogEntry> = BTreeMap::new();
        let mut new_layouts: BTreeMap<String, RelationLayout> = BTreeMap::new();
        for (name, work) in &plan {
            match work {
                Work::Keep => {
                    stats.relations_kept += 1;
                    new_dir.insert(name.clone(), old_dir[name].clone());
                    new_layouts.insert(
                        name.clone(),
                        old_layouts.get(name).cloned().unwrap_or_default(),
                    );
                }
                Work::Fresh { rel, from } => {
                    if *from > 0 {
                        stats.relations_appended += 1;
                    } else {
                        stats.relations_rewritten += 1;
                    }
                    let (_, schema, probabilistic, len) = relation_parts(rel);
                    let new_leaves = checkpoint::encode_leaves(rel, *from)?;
                    let mut leaf_ids: Vec<u64> = if *from > 0 {
                        old_layouts
                            .get(name)
                            .map(|l| l.leaves.clone())
                            .unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    for leaf in new_leaves {
                        let id = alloc.alloc();
                        leaf_ids.push(id);
                        writes.push((id, leaf));
                    }
                    let mut interiors = checkpoint::build_interior_pages(&leaf_ids);
                    let interior_ids: Vec<u64> = interiors.iter().map(|_| alloc.alloc()).collect();
                    for i in 0..interiors.len().saturating_sub(1) {
                        interiors[i].set_next(interior_ids[i + 1]);
                    }
                    let root = interior_ids.first().copied().unwrap_or(0);
                    for (id, p) in interior_ids.iter().zip(interiors) {
                        writes.push((*id, p));
                    }
                    new_dir.insert(
                        name.clone(),
                        CatalogEntry {
                            name: name.clone(),
                            probabilistic,
                            schema: schema.clone(),
                            root,
                            rows: len as u64,
                        },
                    );
                    new_layouts.insert(
                        name.clone(),
                        RelationLayout {
                            leaves: leaf_ids,
                            interior: interior_ids,
                        },
                    );
                }
            }
        }
        let mut cat_pages = checkpoint::build_catalog_pages(new_dir.values())?;
        let cat_ids: Vec<u64> = cat_pages.iter().map(|_| alloc.alloc()).collect();
        for i in 0..cat_pages.len().saturating_sub(1) {
            cat_pages[i].set_next(cat_ids[i + 1]);
        }
        let catalog_root = cat_ids.first().copied().unwrap_or(0);
        for (id, p) in cat_ids.iter().zip(cat_pages) {
            writes.push((*id, p));
        }

        let new_file_pages = alloc.file_pages();
        let new_epoch = self.epoch.load(Ordering::Relaxed) + 1;
        let slot = new_epoch % META_SLOTS;
        let mut meta_page =
            checkpoint::build_meta_page(new_epoch, new_file_pages, catalog_root, floor);

        // --- Write phase. Every destination so far is unreachable from
        // the live meta, so nothing here can corrupt the old state. ---
        let crash = self
            .checkpoint_crash
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        let mut file = self.db_write.lock().unwrap_or_else(|e| e.into_inner());
        if crash == Some(CheckpointCrashPoint::MidPage) {
            if let Some((id, p)) = writes.first_mut() {
                file.seek(SeekFrom::Start(*id * PAGE_SIZE as u64))?;
                file.write_all(&p.sealed_image()[..PAGE_SIZE / 2])?;
                file.sync_data()?;
            }
            self.wal.lock().unwrap_or_else(|e| e.into_inner()).poison();
            return Err(StorageError::InjectedCrash("checkpoint-mid-page"));
        }
        for (id, p) in &mut writes {
            file.seek(SeekFrom::Start(*id * PAGE_SIZE as u64))?;
            file.write_all(p.sealed_image())?;
        }
        if self.options.fsync {
            // sync_all, not sync_data: the file may have grown, and the
            // new length must be durable before the meta slot points past
            // the old end.
            file.sync_all()?;
        }
        // Debug hook for CI's kill-during-checkpoint smoke test: hold the
        // window between data durability and the meta commit open.
        if let Ok(ms) = std::env::var(CHECKPOINT_HOLD_ENV) {
            if let Ok(ms) = ms.trim().parse::<u64>() {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        if crash == Some(CheckpointCrashPoint::AfterPages) {
            self.wal.lock().unwrap_or_else(|e| e.into_inner()).poison();
            return Err(StorageError::InjectedCrash("checkpoint-after-pages"));
        }

        // --- Commit point: one page write to the inactive meta slot. ---
        file.seek(SeekFrom::Start(slot * PAGE_SIZE as u64))?;
        file.write_all(meta_page.sealed_image())?;
        if self.options.fsync {
            file.sync_data()?;
        }
        drop(file);
        if crash == Some(CheckpointCrashPoint::AfterMeta) {
            self.wal.lock().unwrap_or_else(|e| e.into_inner()).poison();
            return Err(StorageError::InjectedCrash("checkpoint-after-meta"));
        }

        // The meta slot is durable; the WAL is redundant up to the floor.
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).reset()?;

        // Publish the new state in memory.
        self.pager.extend_to(new_file_pages);
        let mut invalidated: Vec<u64> = writes.iter().map(|(id, _)| *id).collect();
        invalidated.push(slot);
        self.pager.invalidate(&invalidated);
        *self.directory.write().unwrap_or_else(|e| e.into_inner()) = new_dir;
        *self.layouts.write().unwrap_or_else(|e| e.into_inner()) = new_layouts;
        *self.catalog_pages.lock().unwrap_or_else(|e| e.into_inner()) = cat_ids;
        self.epoch.store(new_epoch, Ordering::Relaxed);
        stats.pages_written = writes.len() as u64 + 1; // + the meta slot
        self.pages_written
            .fetch_add(stats.pages_written, Ordering::Relaxed);
        Ok(stats)
    }

    /// Opens a lazy, leaf-at-a-time stream over one on-disk relation, or
    /// `None` if the catalog has no such relation. Pages fault in one
    /// leaf at a time through the shared cache — the relation is never
    /// materialised whole.
    pub fn scan_stream(&self, name: &str) -> Result<Option<RelationStream>, StorageError> {
        let entry = {
            let dir = self.directory.read().unwrap_or_else(|e| e.into_inner());
            match dir.get(name) {
                Some(e) => e.clone(),
                None => return Ok(None),
            }
        };
        RelationStream::new(Arc::clone(&self.pager), entry).map(Some)
    }

    /// Materialises one relation from disk (through the page cache), or
    /// `None` if the catalog has no such relation.
    pub fn scan(&self, name: &str) -> Result<Option<Relation>, StorageError> {
        let Some(mut stream) = self.scan_stream(name)? else {
            return Ok(None);
        };
        let entry = stream.entry().clone();
        let relation = if entry.probabilistic {
            let mut t = ProbTable::new(&entry.name, entry.schema.clone());
            while let Some((row, prob)) = stream.next_tuple()? {
                let prob = prob.ok_or_else(|| StorageError::CorruptPage {
                    page: entry.root,
                    reason: "probabilistic tuple without probability".into(),
                })?;
                t.insert(row, prob)?;
            }
            Relation::Probabilistic(t)
        } else {
            let mut t = Table::new(&entry.name, entry.schema.clone());
            while let Some((row, _)) = stream.next_tuple()? {
                t.insert(row)?;
            }
            Relation::Deterministic(t)
        };
        Ok(Some(relation))
    }

    /// Names of all relations in the on-disk catalog.
    pub fn relation_names(&self) -> Vec<String> {
        self.directory
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Catalog entry of one relation, if present.
    pub fn entry(&self, name: &str) -> Option<CatalogEntry> {
        self.directory
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Page-cache counters of the live pager.
    pub fn cache_stats(&self) -> PagerStats {
        self.pager.stats()
    }

    /// Atomically replaces the metadata sidecar with `contents` (tmp +
    /// rename + directory fsync). The storage engine treats the contents
    /// as opaque; the upper layer uses it for state that must survive a
    /// checkpoint + WAL reset but has no tuple representation
    /// (density-view lineage).
    pub fn put_meta(&self, contents: &str) -> Result<(), StorageError> {
        let meta_path = self.dir.join(META_FILE);
        let tmp_path = self.dir.join(format!("{META_FILE}.tmp"));
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(contents.as_bytes())?;
            if self.options.fsync {
                f.sync_data()?;
            }
        }
        std::fs::rename(&tmp_path, &meta_path)?;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// The metadata sidecar's contents (`None` when none was ever
    /// written).
    pub fn get_meta(&self) -> Result<Option<String>, StorageError> {
        match std::fs::read_to_string(self.dir.join(META_FILE)) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// A lazy tuple stream over one on-disk relation: decodes one leaf at a
/// time through the shared page cache, verifying the catalog's recorded
/// row count at exhaustion. Owns its pager handle, so it can outlive the
/// [`Storage`] call that opened it.
#[derive(Debug)]
pub struct RelationStream {
    cursor: TupleCursor<Arc<Pager>>,
    entry: CatalogEntry,
    seen: u64,
    done: bool,
}

impl RelationStream {
    fn new(pager: Arc<Pager>, entry: CatalogEntry) -> Result<RelationStream, StorageError> {
        let cursor =
            TupleCursor::new(pager, entry.root, entry.schema.clone(), entry.probabilistic)?;
        Ok(RelationStream {
            cursor,
            entry,
            seen: 0,
            done: false,
        })
    }

    /// The streamed relation's catalog entry.
    pub fn entry(&self) -> &CatalogEntry {
        &self.entry
    }

    /// Decodes the next tuple, or `None` at end of relation — at which
    /// point the tuples seen must match the catalog's recorded row count.
    pub fn next_tuple(&mut self) -> Result<Option<DecodedTuple>, StorageError> {
        if self.done {
            return Ok(None);
        }
        match self.cursor.next_tuple()? {
            Some(t) => {
                self.seen += 1;
                Ok(Some(t))
            }
            None => {
                self.done = true;
                if self.seen != self.entry.rows {
                    return Err(StorageError::CorruptPage {
                        page: self.entry.root,
                        reason: format!(
                            "catalog records {} rows, leaves hold {}",
                            self.entry.rows, self.seen
                        ),
                    });
                }
                Ok(None)
            }
        }
    }
}

impl TupleStream for RelationStream {
    fn schema(&self) -> &Schema {
        &self.entry.schema
    }

    fn probabilistic(&self) -> bool {
        self.entry.probabilistic
    }

    fn next_tuple(&mut self) -> Result<Option<(Vec<Value>, Option<f64>)>, DbError> {
        RelationStream::next_tuple(self).map_err(DbError::from)
    }
}

impl ScanSource for Storage {
    fn scan(&self, name: &str) -> Result<Option<Relation>, DbError> {
        Storage::scan(self, name).map_err(DbError::from)
    }

    fn scan_stream(&self, name: &str) -> Result<Option<Box<dyn TupleStream>>, DbError> {
        Ok(Storage::scan_stream(self, name)?.map(|s| Box::new(s) as Box<dyn TupleStream>))
    }

    fn names(&self) -> Vec<String> {
        self.relation_names()
    }
}

fn relation_parts(r: &Relation) -> (&str, &Schema, bool, usize) {
    match r {
        Relation::Deterministic(t) => (t.name(), t.schema(), false, t.len()),
        Relation::Probabilistic(t) => (t.name(), t.schema(), true, t.len()),
    }
}

/// Fsyncs a directory so a rename inside it is durable.
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Writes a fresh, empty database file: both meta slots at epoch 0 with
/// an empty catalog.
fn write_fresh_db(path: &Path) -> Result<(), StorageError> {
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    for _slot in 0..META_SLOTS {
        let mut meta = checkpoint::build_meta_page(0, META_SLOTS, 0, 0);
        file.write_all(meta.sealed_image())?;
    }
    file.sync_all()?;
    Ok(())
}

/// Everything [`load_db_file`] recovers from a database file.
struct LoadedDb {
    pager: Pager,
    meta: MetaInfo,
    directory: BTreeMap<String, CatalogEntry>,
    layouts: BTreeMap<String, RelationLayout>,
    catalog_pages: Vec<u64>,
}

/// Parses one meta slot, validating checksum, magic, version and page
/// size.
fn read_meta_slot(pager: &Pager, slot: u64) -> Result<MetaInfo, StorageError> {
    let page = pager.get(slot)?;
    if page.kind() != PageKind::Meta {
        return Err(StorageError::BadDatabase(format!(
            "page {slot} is not a meta page"
        )));
    }
    let mut r = Reader::new(page.payload(), slot);
    if r.take_raw(DB_MAGIC.len())? != DB_MAGIC {
        return Err(StorageError::BadDatabase("magic mismatch".into()));
    }
    let version = r.take_u32()?;
    if version != DB_VERSION {
        return Err(StorageError::BadDatabase(format!(
            "database format v{version}, this build reads v{DB_VERSION}"
        )));
    }
    let page_size = r.take_u32()? as usize;
    if page_size != PAGE_SIZE {
        return Err(StorageError::BadDatabase(format!(
            "database uses {page_size}-byte pages, this build uses {PAGE_SIZE}"
        )));
    }
    Ok(MetaInfo {
        epoch: r.take_u64()?,
        n_pages: r.take_u64()?,
        catalog_root: r.take_u64()?,
        wal_floor: r.take_u64()?,
    })
}

/// Walks one relation's interior chain, recording its page layout (leaves
/// are located, not read — scans fault them in lazily).
fn read_layout(pager: &Pager, root: u64) -> Result<RelationLayout, StorageError> {
    let mut layout = RelationLayout::default();
    let mut id = root;
    while id != 0 {
        let page = pager.get(id)?;
        if page.kind() != PageKind::Interior {
            return Err(StorageError::CorruptPage {
                page: id,
                reason: format!("expected an interior page, found {:?}", page.kind()),
            });
        }
        layout.interior.push(id);
        let mut r = Reader::new(page.payload(), id);
        for _ in 0..page.count() {
            layout.leaves.push(r.take_u64()?);
        }
        id = page.next();
    }
    Ok(layout)
}

/// Opens a database file: picks the live meta slot (valid + highest
/// epoch), loads the catalog and per-relation page layouts, and wraps the
/// file in a pager.
fn load_db_file(path: &Path, cache_pages: usize) -> Result<LoadedDb, StorageError> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    // A crash can tear the file's trailing page mid-extension; only whole
    // pages count, and nothing reachable from a valid meta slot can live
    // in the torn tail (the meta committed only after its pages were
    // durable).
    let file_pages = len / PAGE_SIZE as u64;
    if file_pages < META_SLOTS {
        return Err(StorageError::BadDatabase(format!(
            "file length {len} holds fewer than the {META_SLOTS} meta slots"
        )));
    }
    let pager = Pager::new(file, file_pages, cache_pages);

    // Dual-slot recovery: a crash can tear at most the slot being
    // written, so the other one is always a valid, older state.
    let mut meta: Option<MetaInfo> = None;
    let mut slot_errors: Vec<String> = Vec::new();
    for slot in 0..META_SLOTS {
        match read_meta_slot(&pager, slot) {
            Ok(m) if meta.is_none() || m.epoch > meta.expect("checked").epoch => meta = Some(m),
            Ok(_) => {}
            Err(e) => slot_errors.push(format!("slot {slot}: {e}")),
        }
    }
    let Some(meta) = meta else {
        return Err(StorageError::BadDatabase(format!(
            "no valid meta slot ({})",
            slot_errors.join("; ")
        )));
    };
    // The file may be *longer* than the meta records (a checkpoint that
    // extended the file and crashed before its commit point); it must
    // never be shorter.
    if meta.n_pages > file_pages || meta.n_pages < META_SLOTS {
        return Err(StorageError::BadDatabase(format!(
            "meta slot records {} pages, file holds {file_pages}",
            meta.n_pages
        )));
    }

    let mut directory = BTreeMap::new();
    let mut catalog_pages = Vec::new();
    let mut id = meta.catalog_root;
    while id != 0 {
        let page = pager.get(id)?;
        if page.kind() != PageKind::Catalog {
            return Err(StorageError::CorruptPage {
                page: id,
                reason: format!("expected a catalog page, found {:?}", page.kind()),
            });
        }
        catalog_pages.push(id);
        let mut r = Reader::new(page.payload(), id);
        for _ in 0..page.count() {
            let name = r.take_str()?;
            let probabilistic = r.take_u8()? != 0;
            let schema = r.take_schema()?;
            let root = r.take_u64()?;
            let rows = r.take_u64()?;
            directory.insert(
                name.clone(),
                CatalogEntry {
                    name,
                    probabilistic,
                    schema,
                    root,
                    rows,
                },
            );
        }
        id = page.next();
    }
    let mut layouts = BTreeMap::new();
    for (name, entry) in &directory {
        layouts.insert(name.clone(), read_layout(&pager, entry.root)?);
    }
    Ok(LoadedDb {
        pager,
        meta,
        directory,
        layouts,
        catalog_pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_probdb::{ColumnType, Value};

    /// Minimal self-cleaning temp dir (no external crates in the offline
    /// build).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            use std::sync::atomic::AtomicU64;
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "tspdb-storage-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_prob_table(name: &str, rows: usize) -> ProbTable {
        let schema = Schema::of(&[("t", ColumnType::Int), ("r", ColumnType::Float)]);
        let mut t = ProbTable::new(name, schema);
        for i in 0..rows {
            let p = ((i % 97) as f64 + 1.0) / 100.0;
            t.insert(vec![Value::Int(i as i64), Value::Float(0.1 + i as f64)], p)
                .unwrap();
        }
        t
    }

    #[test]
    fn fresh_directory_opens_empty() {
        let dir = TempDir::new();
        let (storage, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert!(recovery.ops.is_empty());
        assert_eq!(recovery.checkpoint_relations, 0);
        assert!(storage.relation_names().is_empty());
        assert!(storage.scan("nope").unwrap().is_none());
    }

    #[test]
    fn checkpoint_then_scan_round_trips_bit_exactly() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let table = sample_prob_table("pv", 500); // several leaves' worth
        storage
            .checkpoint(&[Relation::Probabilistic(table.clone())])
            .unwrap();

        let got = storage.scan("pv").unwrap().expect("pv on disk");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert_eq!(got.len(), table.len());
        for i in 0..table.len() {
            let (row_a, p_a) = table.tuple(i);
            let (row_b, p_b) = got.tuple(i);
            assert_eq!(p_a.to_bits(), p_b.to_bits(), "row {i} probability");
            for (a, b) in row_a.iter().zip(row_b.iter()) {
                match (a, b) {
                    (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                    _ => assert_eq!(a, b),
                }
            }
        }

        // Re-open from disk: same contents, no WAL replay needed.
        drop(storage);
        let (storage, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert!(recovery.ops.is_empty());
        assert_eq!(recovery.checkpoint_relations, 1);
        let got = storage.scan("pv").unwrap().expect("pv survives re-open");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert_eq!(got.len(), 500);
    }

    #[test]
    fn log_survives_reopen_and_checkpoint_sets_the_floor() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        storage.log(&JournalOp::Sql("CREATE ...".into())).unwrap();
        storage.log(&JournalOp::Sql("INSERT 1".into())).unwrap();
        drop(storage);

        // Ops replay on the next open.
        let (storage, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert_eq!(recovery.ops.len(), 2);

        // Checkpoint makes them redundant; nothing replays afterwards, and
        // new ops get fresh sequence numbers above the floor.
        storage.checkpoint(&[]).unwrap();
        assert_eq!(storage.wal_bytes().unwrap(), 0);
        storage.log(&JournalOp::Sql("INSERT 2".into())).unwrap();
        drop(storage);
        let (_, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert_eq!(recovery.ops.len(), 1);
        assert_eq!(recovery.skipped, 0, "WAL was reset, floor covers nothing");
        assert_eq!(recovery.ops[0], JournalOp::Sql("INSERT 2".into()));
    }

    #[test]
    fn stale_wal_records_below_the_floor_are_skipped() {
        // A crash in the window between the checkpoint's meta commit and
        // its WAL reset: the checkpointed file already contains the ops,
        // but the log still holds them. The AfterMeta crash point is that
        // exact window.
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        storage.log(&JournalOp::Sql("INSERT 1".into())).unwrap();
        storage.log(&JournalOp::Sql("INSERT 2".into())).unwrap();

        let table = sample_prob_table("pv", 2);
        storage.set_checkpoint_crash_point(Some(CheckpointCrashPoint::AfterMeta));
        assert!(matches!(
            storage.checkpoint(&[Relation::Probabilistic(table)]),
            Err(StorageError::InjectedCrash("checkpoint-after-meta"))
        ));
        drop(storage); // WAL never reset — the crash window

        let (storage, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert!(recovery.ops.is_empty(), "nothing to redo");
        assert_eq!(recovery.skipped, 2, "both records identified as applied");
        assert!(
            storage.scan("pv").unwrap().is_some(),
            "meta committed before the crash: the new state is served"
        );
        // New writes continue above the floor.
        storage.log(&JournalOp::Sql("INSERT 3".into())).unwrap();
        drop(storage);
        let (_, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert_eq!(recovery.ops.len(), 1);
        assert_eq!(recovery.ops[0], JournalOp::Sql("INSERT 3".into()));
    }

    #[test]
    fn crash_before_meta_commit_recovers_the_old_state() {
        for (point, tag) in [
            (CheckpointCrashPoint::MidPage, "checkpoint-mid-page"),
            (CheckpointCrashPoint::AfterPages, "checkpoint-after-pages"),
        ] {
            let dir = TempDir::new();
            let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
            let v1 = sample_prob_table("pv", 50);
            storage
                .checkpoint(&[Relation::Probabilistic(v1.clone())])
                .unwrap();

            // A bigger version crashes mid-checkpoint, before the commit
            // point: recovery must serve v1, bit-exactly.
            let v2 = sample_prob_table("pv", 200);
            storage.set_checkpoint_crash_point(Some(point));
            assert!(matches!(
                storage.checkpoint_incremental(&[CheckpointSource::Append(
                    &Relation::Probabilistic(v2)
                )]),
                Err(StorageError::InjectedCrash(t)) if t == tag
            ));
            drop(storage);

            let (storage, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
            assert!(recovery.ops.is_empty());
            let got = storage.scan("pv").unwrap().expect("pv survives");
            let Relation::Probabilistic(got) = got else {
                panic!("expected a probabilistic relation")
            };
            assert_eq!(got.len(), 50, "{tag}: the old state, nothing torn");
            for i in 0..50 {
                assert_eq!(got.tuple(i).1.to_bits(), v1.tuple(i).1.to_bits());
            }
        }
    }

    #[test]
    fn append_checkpoints_write_o_dirty_not_o_total() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let full = sample_prob_table("pv", 100_000);
        let full_stats = storage
            .checkpoint(&[Relation::Probabilistic(full.clone())])
            .unwrap();
        assert_eq!(full_stats.relations_rewritten, 1);

        // Append 1% and checkpoint incrementally: the acceptance bound is
        // <10% of the pages a full rewrite writes.
        let mut grown = full.clone();
        for i in 100_000..101_000 {
            let p = ((i % 97) as f64 + 1.0) / 100.0;
            grown
                .insert(vec![Value::Int(i as i64), Value::Float(0.1 + i as f64)], p)
                .unwrap();
        }
        let incr_stats = storage
            .checkpoint_incremental(&[CheckpointSource::Append(&Relation::Probabilistic(
                grown.clone(),
            ))])
            .unwrap();
        assert_eq!(incr_stats.relations_appended, 1);
        assert!(
            incr_stats.pages_written * 10 < full_stats.pages_written,
            "append wrote {} pages, full rewrite wrote {}",
            incr_stats.pages_written,
            full_stats.pages_written
        );

        // And the result is the same as if it had been rewritten whole.
        let got = storage.scan("pv").unwrap().expect("pv on disk");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert_eq!(got.len(), 101_000);
        for i in [0usize, 99_999, 100_000, 100_999] {
            assert_eq!(got.tuple(i).1.to_bits(), grown.tuple(i).1.to_bits());
            assert_eq!(got.tuple(i).0, grown.tuple(i).0);
        }

        // Survives a reboot (the appended suffix + reused prefix chain).
        drop(storage);
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let got = storage.scan("pv").unwrap().expect("pv survives reboot");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert_eq!(got.len(), 101_000);
    }

    #[test]
    fn keep_sources_write_no_relation_pages_and_drops_reclaim_slots() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let a = sample_prob_table("a", 300);
        let b = sample_prob_table("b", 300);
        storage
            .checkpoint(&[
                Relation::Probabilistic(a.clone()),
                Relation::Probabilistic(b),
            ])
            .unwrap();
        // Keep both: only the catalog chain + meta slot are rewritten.
        // The first keep may grow the file by one page (the old catalog
        // slot stays reachable until the *next* checkpoint frees it);
        // after that the two catalog slots alternate — steady state.
        let stats = storage
            .checkpoint_incremental(&[CheckpointSource::Keep("a"), CheckpointSource::Keep("b")])
            .unwrap();
        assert_eq!(stats.relations_kept, 2);
        assert!(
            stats.pages_written <= 2,
            "keep-only checkpoint wrote {} pages",
            stats.pages_written
        );
        let steady = storage.pager.n_pages();
        storage
            .checkpoint_incremental(&[CheckpointSource::Keep("a"), CheckpointSource::Keep("b")])
            .unwrap();
        assert_eq!(storage.pager.n_pages(), steady, "no growth on repeat keep");

        // Drop `b` (absent from the sources): its slots free up, so
        // rewriting `a` into them must not grow the file.
        storage
            .checkpoint_incremental(&[CheckpointSource::Keep("a")])
            .unwrap();
        let before_rewrite = storage.pager.n_pages();
        storage
            .checkpoint_incremental(&[CheckpointSource::Rewrite(&Relation::Probabilistic(
                a.clone(),
            ))])
            .unwrap();
        assert_eq!(
            storage.pager.n_pages(),
            before_rewrite,
            "rewrite reused the dropped relation's slots"
        );
        assert!(storage.scan("b").unwrap().is_none(), "b was dropped");
        let got = storage.scan("a").unwrap().expect("a lives");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert_eq!(got.len(), 300);
    }

    #[test]
    fn unknown_keep_source_is_an_error() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert!(matches!(
            storage.checkpoint_incremental(&[CheckpointSource::Keep("ghost")]),
            Err(StorageError::UnknownRelation(n)) if n == "ghost"
        ));
    }

    #[test]
    fn incompatible_append_degrades_to_a_rewrite() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        storage
            .checkpoint(&[Relation::Probabilistic(sample_prob_table("pv", 100))])
            .unwrap();

        // Shrunk row count can't reuse the prefix: must degrade, not
        // corrupt.
        let shrunk = sample_prob_table("pv", 40);
        let stats = storage
            .checkpoint_incremental(&[CheckpointSource::Append(&Relation::Probabilistic(
                shrunk.clone(),
            ))])
            .unwrap();
        assert_eq!(stats.relations_rewritten, 1);
        assert_eq!(stats.relations_appended, 0);
        let got = storage.scan("pv").unwrap().expect("pv on disk");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert_eq!(got.len(), 40);

        // Unchanged append degrades to a keep: no relation pages written.
        let stats = storage
            .checkpoint_incremental(&[CheckpointSource::Append(&Relation::Probabilistic(shrunk))])
            .unwrap();
        assert_eq!(stats.relations_kept, 1);
        assert!(stats.pages_written <= 2);
    }

    #[test]
    fn lazy_stream_yields_the_materialized_tuples() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let table = sample_prob_table("pv", 500);
        storage
            .checkpoint(&[Relation::Probabilistic(table.clone())])
            .unwrap();

        let mut stream = storage.scan_stream("pv").unwrap().expect("pv on disk");
        assert!(stream.entry().probabilistic);
        let mut n = 0usize;
        while let Some((row, prob)) = stream.next_tuple().unwrap() {
            let (want_row, want_p) = table.tuple(n);
            assert_eq!(prob.expect("probabilistic").to_bits(), want_p.to_bits());
            assert_eq!(&row, want_row);
            n += 1;
        }
        assert_eq!(n, 500);
        assert!(storage.scan_stream("nope").unwrap().is_none());
    }

    #[test]
    fn deterministic_relations_round_trip() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let schema = Schema::of(&[("t", ColumnType::Int), ("tag", ColumnType::Text)]);
        let mut t = Table::new("raw", schema);
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Text(format!("s{i}"))])
                .unwrap();
        }
        storage
            .checkpoint(&[Relation::Deterministic(t.clone())])
            .unwrap();
        let got = storage.scan("raw").unwrap().expect("raw on disk");
        let Relation::Deterministic(got) = got else {
            panic!("expected a deterministic relation")
        };
        assert_eq!(got.rows(), t.rows());
    }

    #[test]
    fn empty_relation_round_trips() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let t = sample_prob_table("empty", 0);
        storage.checkpoint(&[Relation::Probabilistic(t)]).unwrap();
        let got = storage.scan("empty").unwrap().expect("cataloged");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert!(got.is_empty());
    }

    #[test]
    fn injected_crash_poisons_the_handle() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        storage.set_crash_point(Some(CrashPoint::PreCommit));
        assert!(storage.log(&JournalOp::Sql("INSERT 1".into())).is_err());
        assert!(storage.is_poisoned());
        assert!(matches!(
            storage.log(&JournalOp::Sql("INSERT 2".into())),
            Err(StorageError::Poisoned)
        ));
        assert!(matches!(
            storage.checkpoint(&[]),
            Err(StorageError::Poisoned)
        ));
        // Scans still work: reads never depend on the write path.
        assert!(storage.scan("nope").unwrap().is_none());
    }

    #[test]
    fn warm_scans_hit_the_cache() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let table = sample_prob_table("pv", 300);
        storage
            .checkpoint(&[Relation::Probabilistic(table)])
            .unwrap();
        storage.scan("pv").unwrap();
        let cold = storage.cache_stats();
        storage.scan("pv").unwrap();
        let warm = storage.cache_stats();
        assert_eq!(warm.misses, cold.misses, "second scan reads no pages");
        assert!(warm.hits > cold.hits);
    }
}
