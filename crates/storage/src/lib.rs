//! # tspdb-storage
//!
//! The persistent storage engine under the `tspdb` workspace: paged
//! on-disk tables behind an immutable-snapshot page cache, a checksummed
//! write-ahead log, and crash recovery that replays the committed prefix
//! on boot.
//!
//! A database directory holds two files:
//!
//! * `tspdb.db` — fixed-size pages ([`page::PAGE_SIZE`] bytes): a meta
//!   page, a catalog chain (one entry per relation), and per relation an
//!   interior chain listing its leaf pages and the leaves holding encoded
//!   tuples. The file is only ever replaced wholesale by
//!   [`Storage::checkpoint`] (write-new, fsync, atomic rename), never
//!   patched in place — which is what lets the page cache hold immutable
//!   [`std::sync::Arc`] snapshots, the same design as the engine's σ-cache.
//! * `tspdb.wal` — the redo log. Every mutating operation is appended and
//!   fsynced **before** it is applied in memory; recovery replays
//!   committed records newer than the last checkpoint.
//!
//! ## Determinism across media
//!
//! Tuples are encoded with floats as IEEE-754 bit patterns and replayed
//! writes go through the same engine write path as live ones, so a tuple
//! is bit-identical whether it came from the page cache, a cold disk
//! read, or a post-crash WAL replay — and therefore so is every query
//! fingerprint, at any thread count, for a fixed query + seed.
//!
//! ## Crash safety
//!
//! The commit point of a write is the WAL fsync. The checkpoint commit
//! point is the atomic rename of the rewritten database file. The window
//! between a checkpoint's rename and its WAL reset is covered by
//! sequence numbers: the meta page stores the last sequence the
//! checkpoint contains, and replay skips records at or below that floor,
//! so nothing is ever applied twice. Fault-injection crash points
//! ([`CrashPoint`]) cut the write path at each of these windows in tests.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
pub mod cursor;
pub mod error;
pub mod page;
pub mod pager;
pub mod wal;

pub use error::StorageError;
pub use pager::{Pager, PagerStats, DEFAULT_CACHE_PAGES};
pub use wal::{CrashPoint, JournalOp};

use codec::{Reader, Writer};
use cursor::TupleCursor;
use page::{Page, PageKind, PAGE_SIZE, PAYLOAD_LEN};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use tspdb_probdb::{DbError, ProbTable, Relation, ScanSource, Schema, Table};

/// Database file magic.
const DB_MAGIC: &[u8; 8] = b"TSPDB-DB";

/// Database file format version.
const DB_VERSION: u32 = 1;

/// Name of the paged database file inside a data directory.
pub const DB_FILE: &str = "tspdb.db";

/// Name of the write-ahead log inside a data directory.
pub const WAL_FILE: &str = "tspdb.wal";

/// Name of the engine metadata sidecar inside a data directory (free-form
/// text the upper layer owns — e.g. density-view lineage specs persisted
/// across checkpoints). Written atomically (tmp + rename + dir fsync).
pub const META_FILE: &str = "tspdb.meta";

/// Tuning knobs of a [`Storage`].
#[derive(Debug, Clone, Copy)]
pub struct StorageOptions {
    /// Page-cache capacity in pages.
    pub cache_pages: usize,
    /// Whether commits fsync. Leave `true` anywhere durability matters;
    /// tests that hammer the write path may turn it off.
    pub fsync: bool,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            cache_pages: DEFAULT_CACHE_PAGES,
            fsync: true,
        }
    }
}

/// One relation's entry in the on-disk catalog.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Relation name.
    pub name: String,
    /// Whether tuples carry existence probabilities.
    pub probabilistic: bool,
    /// Column layout.
    pub schema: Schema,
    /// Interior-chain root page id (0 = no tuples).
    pub root: u64,
    /// Tuple count, recorded for integrity checking on scan.
    pub rows: u64,
}

/// What [`Storage::open`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// Committed WAL operations newer than the checkpoint, in commit
    /// order. The caller must replay them through its normal write path
    /// (without re-logging) before serving queries.
    pub ops: Vec<JournalOp>,
    /// Relations present in the checkpointed database file.
    pub checkpoint_relations: usize,
    /// WAL records skipped as already covered by the checkpoint.
    pub skipped: usize,
    /// Whether a torn WAL tail (crash mid-write) was truncated away.
    pub truncated_tail: bool,
}

/// The persistent storage engine of one database directory.
///
/// Thread-safe: scans take a snapshot of the pager and directory under a
/// read lock; `log` serialises appends on the WAL mutex; `checkpoint`
/// swaps the pager and directory wholesale after the atomic rename.
#[derive(Debug)]
pub struct Storage {
    dir: PathBuf,
    options: StorageOptions,
    pager: RwLock<Arc<Pager>>,
    directory: RwLock<BTreeMap<String, CatalogEntry>>,
    wal: Mutex<wal::Wal>,
    /// Sequence number of the last record appended to the WAL (0 = none
    /// since the floor).
    last_seq: AtomicU64,
}

impl Storage {
    /// Opens (creating if absent) the database directory and runs
    /// recovery: verifies and loads the checkpointed file, replays the
    /// WAL's committed suffix, truncates any torn tail. The returned
    /// [`Recovery::ops`] must be replayed by the caller before use.
    pub fn open(dir: &Path, options: StorageOptions) -> Result<(Storage, Recovery), StorageError> {
        std::fs::create_dir_all(dir)?;
        let db_path = dir.join(DB_FILE);
        if !db_path.exists() {
            // Fresh directory: write an empty database (meta page only).
            write_db_file(&db_path.with_extension("db.tmp"), &[], 0)?;
            std::fs::rename(db_path.with_extension("db.tmp"), &db_path)?;
            sync_dir(dir)?;
        }

        let (pager, directory, wal_floor) = load_db_file(&db_path, options.cache_pages)?;
        let (wal, replay) = wal::Wal::open(&dir.join(WAL_FILE), wal_floor, options.fsync)?;
        let last_seq = replay.last_seq.max(wal_floor);
        let recovery = Recovery {
            ops: replay.ops.into_iter().map(|(_, op)| op).collect(),
            checkpoint_relations: directory.len(),
            skipped: replay.skipped,
            truncated_tail: replay.truncated_tail,
        };
        Ok((
            Storage {
                dir: dir.to_path_buf(),
                options,
                pager: RwLock::new(Arc::new(pager)),
                directory: RwLock::new(directory),
                wal: Mutex::new(wal),
                last_seq: AtomicU64::new(last_seq),
            },
            recovery,
        ))
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Journals one operation: appends it to the WAL and fsyncs. Returns
    /// only once the record is durable — callers apply the operation in
    /// memory **after** this returns (redo logging).
    pub fn log(&self, op: &JournalOp) -> Result<u64, StorageError> {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        let seq = self.last_seq.load(Ordering::Relaxed) + 1;
        wal.append(seq, op)?;
        self.last_seq.store(seq, Ordering::Relaxed);
        Ok(seq)
    }

    /// Journals a batch of operations with **group commit**: all records
    /// are appended and committed under one WAL fsync instead of one per
    /// operation — the amortisation that makes a streamed append workload
    /// affordable. Returns the sequence number of the batch's last record.
    /// Durability is prefix-shaped: a crash mid-batch recovers some prefix
    /// of it (the torn suffix never happened).
    pub fn log_batch(&self, ops: &[JournalOp]) -> Result<u64, StorageError> {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        let start = self.last_seq.load(Ordering::Relaxed) + 1;
        wal.append_batch(start, ops)?;
        let last = start + ops.len().saturating_sub(1) as u64;
        if !ops.is_empty() {
            self.last_seq.store(last, Ordering::Relaxed);
        }
        Ok(last)
    }

    /// Sequence number of the last journaled record — the cheap dirty
    /// check: a relation whose last-touched sequence is at or below the
    /// checkpoint floor has nothing new to checkpoint.
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Relaxed)
    }

    /// Commit fsyncs issued by the WAL so far (observable for the group
    /// commit tests: N batched ops move this by 1).
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).fsyncs()
    }

    /// Arms a fault-injection crash point for the next [`Storage::log`]
    /// call (tests only). After it fires the handle is poisoned.
    pub fn set_crash_point(&self, point: Option<CrashPoint>) {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .set_crash_point(point);
    }

    /// Whether an injected crash has poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_poisoned()
    }

    /// Bytes of redo records currently in the WAL (drives auto-checkpoint
    /// thresholds upstream).
    pub fn wal_bytes(&self) -> Result<u64, StorageError> {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len_bytes()
    }

    /// Writes a full checkpoint: encodes `relations` into a new database
    /// file, fsyncs it, atomically renames it over the live one, resets
    /// the WAL, and swaps in a fresh pager. The caller must guarantee the
    /// relation set is the result of every operation logged so far (i.e.
    /// hold its write lock across this call).
    pub fn checkpoint(&self, relations: &[Relation]) -> Result<(), StorageError> {
        {
            let wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
            if wal.is_poisoned() {
                return Err(StorageError::Poisoned);
            }
        }
        let floor = self.last_seq.load(Ordering::Relaxed);
        let mut sorted: Vec<&Relation> = relations.iter().collect();
        sorted.sort_by(|a, b| relation_name(a).cmp(relation_name(b)));

        let db_path = self.dir.join(DB_FILE);
        let tmp_path = self.dir.join(format!("{DB_FILE}.tmp"));
        write_db_file(&tmp_path, &sorted, floor)?;
        std::fs::rename(&tmp_path, &db_path)?;
        sync_dir(&self.dir)?;

        // The rename is the commit point; from here the WAL is redundant.
        let (pager, directory, _) = load_db_file(&db_path, self.options.cache_pages)?;
        {
            let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
            wal.reset()?;
        }
        *self.pager.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(pager);
        *self.directory.write().unwrap_or_else(|e| e.into_inner()) = directory;
        Ok(())
    }

    /// Materialises one relation from disk (through the page cache), or
    /// `None` if the catalog has no such relation.
    pub fn scan(&self, name: &str) -> Result<Option<Relation>, StorageError> {
        let entry = {
            let dir = self.directory.read().unwrap_or_else(|e| e.into_inner());
            match dir.get(name) {
                Some(e) => e.clone(),
                None => return Ok(None),
            }
        };
        let pager = Arc::clone(&self.pager.read().unwrap_or_else(|e| e.into_inner()));
        let mut cursor = TupleCursor::new(
            &pager,
            entry.root,
            entry.schema.clone(),
            entry.probabilistic,
        )?;
        let relation = if entry.probabilistic {
            let mut t = ProbTable::new(&entry.name, entry.schema.clone());
            while let Some((row, prob)) = cursor.next_tuple()? {
                let prob = prob.ok_or_else(|| StorageError::CorruptPage {
                    page: entry.root,
                    reason: "probabilistic tuple without probability".into(),
                })?;
                t.insert(row, prob)?;
            }
            Relation::Probabilistic(t)
        } else {
            let mut t = Table::new(&entry.name, entry.schema.clone());
            while let Some((row, _)) = cursor.next_tuple()? {
                t.insert(row)?;
            }
            Relation::Deterministic(t)
        };
        let got = match &relation {
            Relation::Deterministic(t) => t.len() as u64,
            Relation::Probabilistic(t) => t.len() as u64,
        };
        if got != entry.rows {
            return Err(StorageError::CorruptPage {
                page: entry.root,
                reason: format!("catalog records {} rows, leaves hold {got}", entry.rows),
            });
        }
        Ok(Some(relation))
    }

    /// Names of all relations in the on-disk catalog.
    pub fn relation_names(&self) -> Vec<String> {
        self.directory
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Catalog entry of one relation, if present.
    pub fn entry(&self, name: &str) -> Option<CatalogEntry> {
        self.directory
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Page-cache counters of the live pager.
    pub fn cache_stats(&self) -> PagerStats {
        self.pager.read().unwrap_or_else(|e| e.into_inner()).stats()
    }

    /// Atomically replaces the metadata sidecar with `contents` (tmp +
    /// rename + directory fsync, same discipline as the checkpoint file).
    /// The storage engine treats the contents as opaque; the upper layer
    /// uses it for state that must survive a checkpoint + WAL reset but
    /// has no tuple representation (density-view lineage).
    pub fn put_meta(&self, contents: &str) -> Result<(), StorageError> {
        let meta_path = self.dir.join(META_FILE);
        let tmp_path = self.dir.join(format!("{META_FILE}.tmp"));
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(contents.as_bytes())?;
            if self.options.fsync {
                f.sync_data()?;
            }
        }
        std::fs::rename(&tmp_path, &meta_path)?;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// The metadata sidecar's contents (`None` when none was ever
    /// written).
    pub fn get_meta(&self) -> Result<Option<String>, StorageError> {
        match std::fs::read_to_string(self.dir.join(META_FILE)) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

impl ScanSource for Storage {
    fn scan(&self, name: &str) -> Result<Option<Relation>, DbError> {
        Storage::scan(self, name).map_err(DbError::from)
    }

    fn names(&self) -> Vec<String> {
        self.relation_names()
    }
}

fn relation_name(r: &Relation) -> &str {
    match r {
        Relation::Deterministic(t) => t.name(),
        Relation::Probabilistic(t) => t.name(),
    }
}

/// Fsyncs a directory so a rename inside it is durable.
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Encodes `relations` into a complete database file at `path` (meta page,
/// catalog chain, per-relation interior + leaf chains) and fsyncs it.
/// `wal_floor` is stored in the meta page as the replay floor.
fn write_db_file(path: &Path, relations: &[&Relation], wal_floor: u64) -> Result<(), StorageError> {
    // Page 0 is the meta page; real pages start at 1.
    let mut pages: Vec<Page> = vec![Page::new(PageKind::Meta)];
    let mut entries: Vec<CatalogEntry> = Vec::with_capacity(relations.len());

    for relation in relations {
        let (name, schema, probabilistic, n_rows) = match relation {
            Relation::Deterministic(t) => (t.name(), t.schema(), false, t.len()),
            Relation::Probabilistic(t) => (t.name(), t.schema(), true, t.len()),
        };
        // Encode tuples and pack them greedily into leaves.
        let mut leaves: Vec<Page> = Vec::new();
        let mut payload = Writer::new();
        let mut count = 0u32;
        let seal = |payload: &mut Writer, count: &mut u32, leaves: &mut Vec<Page>| {
            let mut leaf = Page::new(PageKind::Leaf);
            leaf.set_payload(&std::mem::take(payload).into_bytes());
            leaf.set_count(*count);
            *count = 0;
            leaves.push(leaf);
        };
        for i in 0..n_rows {
            let mut tuple = Writer::new();
            match relation {
                Relation::Deterministic(t) => {
                    for v in &t.rows()[i] {
                        tuple.put_value(v);
                    }
                }
                Relation::Probabilistic(t) => {
                    tuple.put_f64(t.probs()[i]);
                    for v in &t.rows()[i] {
                        tuple.put_value(v);
                    }
                }
            }
            let tuple = tuple.into_bytes();
            if tuple.len() > PAYLOAD_LEN {
                return Err(StorageError::TupleTooLarge {
                    size: tuple.len(),
                    max: PAYLOAD_LEN,
                });
            }
            if payload.len() + tuple.len() > PAYLOAD_LEN {
                seal(&mut payload, &mut count, &mut leaves);
            }
            payload.put_raw(&tuple);
            count += 1;
        }
        if count > 0 {
            seal(&mut payload, &mut count, &mut leaves);
        }

        // Leaves get consecutive ids; chain them in order.
        let first_leaf = pages.len() as u64;
        let n_leaves = leaves.len();
        for (i, mut leaf) in leaves.into_iter().enumerate() {
            if i + 1 < n_leaves {
                leaf.set_next(first_leaf + i as u64 + 1);
            }
            pages.push(leaf);
        }

        // Interior chain: the ordered leaf id list, ≤ PAYLOAD_LEN/8 per page.
        let ids_per_page = PAYLOAD_LEN / 8;
        let leaf_ids: Vec<u64> = (0..n_leaves as u64).map(|i| first_leaf + i).collect();
        let mut root = 0u64;
        let n_interior = leaf_ids.chunks(ids_per_page).count();
        let first_interior = pages.len() as u64;
        for (i, chunk) in leaf_ids.chunks(ids_per_page).enumerate() {
            let mut interior = Page::new(PageKind::Interior);
            let mut w = Writer::new();
            for id in chunk {
                w.put_u64(*id);
            }
            interior.set_payload(&w.into_bytes());
            interior.set_count(chunk.len() as u32);
            if i + 1 < n_interior {
                interior.set_next(first_interior + i as u64 + 1);
            }
            if i == 0 {
                root = first_interior;
            }
            pages.push(interior);
        }

        entries.push(CatalogEntry {
            name: name.to_string(),
            probabilistic,
            schema: schema.clone(),
            root,
            rows: n_rows as u64,
        });
    }

    // Catalog chain: entries packed greedily, one chain for the whole
    // database.
    let mut catalog_pages: Vec<Page> = Vec::new();
    let mut payload = Writer::new();
    let mut count = 0u32;
    for entry in &entries {
        let mut enc = Writer::new();
        enc.put_str(&entry.name);
        enc.put_u8(u8::from(entry.probabilistic));
        enc.put_schema(&entry.schema);
        enc.put_u64(entry.root);
        enc.put_u64(entry.rows);
        let enc = enc.into_bytes();
        if enc.len() > PAYLOAD_LEN {
            return Err(StorageError::BadDatabase(format!(
                "catalog entry for {:?} exceeds one page",
                entry.name
            )));
        }
        if payload.len() + enc.len() > PAYLOAD_LEN {
            let mut p = Page::new(PageKind::Catalog);
            p.set_payload(&std::mem::take(&mut payload).into_bytes());
            p.set_count(count);
            count = 0;
            catalog_pages.push(p);
        }
        payload.put_raw(&enc);
        count += 1;
    }
    if count > 0 {
        let mut p = Page::new(PageKind::Catalog);
        p.set_payload(&payload.into_bytes());
        p.set_count(count);
        catalog_pages.push(p);
    }
    let catalog_root = if catalog_pages.is_empty() {
        0
    } else {
        pages.len() as u64
    };
    let first_catalog = pages.len() as u64;
    let n_catalog = catalog_pages.len();
    for (i, mut p) in catalog_pages.into_iter().enumerate() {
        if i + 1 < n_catalog {
            p.set_next(first_catalog + i as u64 + 1);
        }
        pages.push(p);
    }

    // Meta page, now that every id is known.
    let mut meta = Writer::new();
    meta.put_raw(DB_MAGIC);
    meta.put_u32(DB_VERSION);
    meta.put_u32(PAGE_SIZE as u32);
    meta.put_u64(pages.len() as u64);
    meta.put_u64(catalog_root);
    meta.put_u64(wal_floor);
    pages[0].set_payload(&meta.into_bytes());

    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    for page in &mut pages {
        file.write_all(page.sealed_image())?;
    }
    file.sync_all()?;
    Ok(())
}

/// Opens a database file: verifies the meta page, loads the catalog, and
/// wraps the file in a pager.
fn load_db_file(
    path: &Path,
    cache_pages: usize,
) -> Result<(Pager, BTreeMap<String, CatalogEntry>, u64), StorageError> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    if len == 0 || len % PAGE_SIZE as u64 != 0 {
        return Err(StorageError::BadDatabase(format!(
            "file length {len} is not a positive multiple of the {PAGE_SIZE}-byte page size"
        )));
    }
    let pager = Pager::new(file, len / PAGE_SIZE as u64, cache_pages);

    let meta = pager.get(0)?;
    if meta.kind() != PageKind::Meta {
        return Err(StorageError::BadDatabase(
            "page 0 is not a meta page".into(),
        ));
    }
    let mut r = Reader::new(meta.payload(), 0);
    if r.take_raw(DB_MAGIC.len())? != DB_MAGIC {
        return Err(StorageError::BadDatabase("magic mismatch".into()));
    }
    let version = r.take_u32()?;
    if version != DB_VERSION {
        return Err(StorageError::BadDatabase(format!(
            "database format v{version}, this build reads v{DB_VERSION}"
        )));
    }
    let page_size = r.take_u32()? as usize;
    if page_size != PAGE_SIZE {
        return Err(StorageError::BadDatabase(format!(
            "database uses {page_size}-byte pages, this build uses {PAGE_SIZE}"
        )));
    }
    let n_pages = r.take_u64()?;
    if n_pages != pager.n_pages() {
        return Err(StorageError::BadDatabase(format!(
            "meta page records {n_pages} pages, file holds {}",
            pager.n_pages()
        )));
    }
    let catalog_root = r.take_u64()?;
    let wal_floor = r.take_u64()?;

    let mut directory = BTreeMap::new();
    let mut id = catalog_root;
    while id != 0 {
        let page = pager.get(id)?;
        if page.kind() != PageKind::Catalog {
            return Err(StorageError::CorruptPage {
                page: id,
                reason: format!("expected a catalog page, found {:?}", page.kind()),
            });
        }
        let mut r = Reader::new(page.payload(), id);
        for _ in 0..page.count() {
            let name = r.take_str()?;
            let probabilistic = r.take_u8()? != 0;
            let schema = r.take_schema()?;
            let root = r.take_u64()?;
            let rows = r.take_u64()?;
            directory.insert(
                name.clone(),
                CatalogEntry {
                    name,
                    probabilistic,
                    schema,
                    root,
                    rows,
                },
            );
        }
        id = page.next();
    }
    Ok((pager, directory, wal_floor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_probdb::{ColumnType, Value};

    /// Minimal self-cleaning temp dir (no external crates in the offline
    /// build).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            use std::sync::atomic::AtomicU64;
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "tspdb-storage-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_prob_table(name: &str, rows: usize) -> ProbTable {
        let schema = Schema::of(&[("t", ColumnType::Int), ("r", ColumnType::Float)]);
        let mut t = ProbTable::new(name, schema);
        for i in 0..rows {
            let p = ((i % 97) as f64 + 1.0) / 100.0;
            t.insert(vec![Value::Int(i as i64), Value::Float(0.1 + i as f64)], p)
                .unwrap();
        }
        t
    }

    #[test]
    fn fresh_directory_opens_empty() {
        let dir = TempDir::new();
        let (storage, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert!(recovery.ops.is_empty());
        assert_eq!(recovery.checkpoint_relations, 0);
        assert!(storage.relation_names().is_empty());
        assert!(storage.scan("nope").unwrap().is_none());
    }

    #[test]
    fn checkpoint_then_scan_round_trips_bit_exactly() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let table = sample_prob_table("pv", 500); // several leaves' worth
        storage
            .checkpoint(&[Relation::Probabilistic(table.clone())])
            .unwrap();

        let got = storage.scan("pv").unwrap().expect("pv on disk");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert_eq!(got.len(), table.len());
        for i in 0..table.len() {
            let (row_a, p_a) = table.tuple(i);
            let (row_b, p_b) = got.tuple(i);
            assert_eq!(p_a.to_bits(), p_b.to_bits(), "row {i} probability");
            for (a, b) in row_a.iter().zip(row_b.iter()) {
                match (a, b) {
                    (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                    _ => assert_eq!(a, b),
                }
            }
        }

        // Re-open from disk: same contents, no WAL replay needed.
        drop(storage);
        let (storage, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert!(recovery.ops.is_empty());
        assert_eq!(recovery.checkpoint_relations, 1);
        let got = storage.scan("pv").unwrap().expect("pv survives re-open");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert_eq!(got.len(), 500);
    }

    #[test]
    fn log_survives_reopen_and_checkpoint_sets_the_floor() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        storage.log(&JournalOp::Sql("CREATE ...".into())).unwrap();
        storage.log(&JournalOp::Sql("INSERT 1".into())).unwrap();
        drop(storage);

        // Ops replay on the next open.
        let (storage, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert_eq!(recovery.ops.len(), 2);

        // Checkpoint makes them redundant; nothing replays afterwards, and
        // new ops get fresh sequence numbers above the floor.
        storage.checkpoint(&[]).unwrap();
        assert_eq!(storage.wal_bytes().unwrap(), 0);
        storage.log(&JournalOp::Sql("INSERT 2".into())).unwrap();
        drop(storage);
        let (_, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert_eq!(recovery.ops.len(), 1);
        assert_eq!(recovery.skipped, 0, "WAL was reset, floor covers nothing");
        assert_eq!(recovery.ops[0], JournalOp::Sql("INSERT 2".into()));
    }

    #[test]
    fn stale_wal_records_below_the_floor_are_skipped() {
        // Simulate a crash in the window between the checkpoint's rename
        // and its WAL reset: the checkpointed file already contains the
        // ops, but the log still holds them.
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        storage.log(&JournalOp::Sql("INSERT 1".into())).unwrap();
        storage.log(&JournalOp::Sql("INSERT 2".into())).unwrap();

        // Checkpoint writes the new db file but "crashes" before reset: we
        // re-create that state by writing the db file out of band.
        let table = sample_prob_table("pv", 2);
        write_db_file(
            &dir.path().join(format!("{DB_FILE}.tmp")),
            &[&Relation::Probabilistic(table)],
            2, // floor: both logged ops are inside the checkpoint
        )
        .unwrap();
        std::fs::rename(
            dir.path().join(format!("{DB_FILE}.tmp")),
            dir.path().join(DB_FILE),
        )
        .unwrap();
        drop(storage); // WAL never reset — the crash window

        let (storage, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert!(recovery.ops.is_empty(), "nothing to redo");
        assert_eq!(recovery.skipped, 2, "both records identified as applied");
        // New writes continue above the floor.
        storage.log(&JournalOp::Sql("INSERT 3".into())).unwrap();
        drop(storage);
        let (_, recovery) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        assert_eq!(recovery.ops.len(), 1);
        assert_eq!(recovery.ops[0], JournalOp::Sql("INSERT 3".into()));
    }

    #[test]
    fn deterministic_relations_round_trip() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let schema = Schema::of(&[("t", ColumnType::Int), ("tag", ColumnType::Text)]);
        let mut t = Table::new("raw", schema);
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Text(format!("s{i}"))])
                .unwrap();
        }
        storage
            .checkpoint(&[Relation::Deterministic(t.clone())])
            .unwrap();
        let got = storage.scan("raw").unwrap().expect("raw on disk");
        let Relation::Deterministic(got) = got else {
            panic!("expected a deterministic relation")
        };
        assert_eq!(got.rows(), t.rows());
    }

    #[test]
    fn empty_relation_round_trips() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let t = sample_prob_table("empty", 0);
        storage.checkpoint(&[Relation::Probabilistic(t)]).unwrap();
        let got = storage.scan("empty").unwrap().expect("cataloged");
        let Relation::Probabilistic(got) = got else {
            panic!("expected a probabilistic relation")
        };
        assert!(got.is_empty());
    }

    #[test]
    fn injected_crash_poisons_the_handle() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        storage.set_crash_point(Some(CrashPoint::PreCommit));
        assert!(storage.log(&JournalOp::Sql("INSERT 1".into())).is_err());
        assert!(storage.is_poisoned());
        assert!(matches!(
            storage.log(&JournalOp::Sql("INSERT 2".into())),
            Err(StorageError::Poisoned)
        ));
        assert!(matches!(
            storage.checkpoint(&[]),
            Err(StorageError::Poisoned)
        ));
        // Scans still work: reads never depend on the write path.
        assert!(storage.scan("nope").unwrap().is_none());
    }

    #[test]
    fn warm_scans_hit_the_cache() {
        let dir = TempDir::new();
        let (storage, _) = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let table = sample_prob_table("pv", 300);
        storage
            .checkpoint(&[Relation::Probabilistic(table)])
            .unwrap();
        storage.scan("pv").unwrap();
        let cold = storage.cache_stats();
        storage.scan("pv").unwrap();
        let warm = storage.cache_stats();
        assert_eq!(warm.misses, cold.misses, "second scan reads no pages");
        assert!(warm.hits > cold.hits);
    }
}
