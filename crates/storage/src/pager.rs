//! The pager: one database file behind a page cache keyed by page id.
//!
//! The cache holds **immutable [`Arc<Page>`] snapshots** — the same design
//! as the σ-cache's `Arc` rungs: the read path clones an `Arc` out of the
//! map and works on the snapshot without ever blocking another reader on
//! page content. The `RwLock` around the map is held only for the lookup
//! itself; a cache miss reads the page from the file, verifies its
//! checksum, and publishes the `Arc` for everyone after it.
//!
//! The pager itself never writes. Checkpoints shadow-write through a
//! separate handle — only to pages that are *free* under the current meta
//! (see [`crate::Storage::checkpoint_incremental`]) — then call
//! [`Pager::extend_to`] / [`Pager::invalidate`] so the cache drops exactly
//! the page ids that were rewritten. A cached page reachable from the old
//! meta is never overwritten on disk, so snapshots held across a
//! checkpoint stay byte-valid.

use crate::error::StorageError;
use crate::page::{Page, PAGE_SIZE};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default number of pages the cache may hold (1024 × 4 KiB = 4 MiB).
pub const DEFAULT_CACHE_PAGES: usize = 1024;

/// Hit/miss counters of one pager (relaxed atomics — diagnostics, not a
/// consistent snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that went to disk.
    pub misses: u64,
}

/// A page-granular reader over one database file.
#[derive(Debug)]
pub struct Pager {
    file: Mutex<File>,
    cache: RwLock<HashMap<u64, Arc<Page>>>,
    /// FIFO of resident page ids, used for eviction once `capacity` is
    /// exceeded. Approximate by design: eviction only bounds memory, it
    /// never affects results.
    resident: Mutex<VecDeque<u64>>,
    capacity: usize,
    /// Physical page count. Grows in place when a checkpoint extends the
    /// file ([`Pager::extend_to`]); never shrinks while the pager lives.
    n_pages: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Pager {
    /// Wraps an open database file holding `n_pages` pages.
    pub fn new(file: File, n_pages: u64, capacity: usize) -> Self {
        Pager {
            file: Mutex::new(file),
            cache: RwLock::new(HashMap::new()),
            resident: Mutex::new(VecDeque::new()),
            capacity: capacity.max(8),
            n_pages: AtomicU64::new(n_pages),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of pages in the file.
    pub fn n_pages(&self) -> u64 {
        self.n_pages.load(Ordering::Acquire)
    }

    /// Grows the addressable page count to `n_pages` (no-op when the file
    /// already reaches it). Called after a checkpoint extends the file.
    pub fn extend_to(&self, n_pages: u64) {
        self.n_pages.fetch_max(n_pages, Ordering::AcqRel);
    }

    /// Drops the given page ids from the cache. Called after a checkpoint
    /// rewrites free slots in place, so the next read of any rewritten id
    /// refetches the new image; ids never cached are ignored.
    pub fn invalidate(&self, ids: &[u64]) {
        let mut cache = self.cache.write().expect("page cache lock");
        for id in ids {
            cache.remove(id);
        }
        // Stale ids may linger in the residency FIFO; eviction treats a
        // miss on removal as already-gone, so no cleanup is needed here.
    }

    /// Cache counters.
    pub fn stats(&self) -> PagerStats {
        PagerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Reads page `id`, serving from the cache when possible. The returned
    /// snapshot is immutable and safe to hold across any later checkpoint.
    pub fn get(&self, id: u64) -> Result<Arc<Page>, StorageError> {
        let n_pages = self.n_pages();
        if id >= n_pages {
            return Err(StorageError::CorruptPage {
                page: id,
                reason: format!("page id beyond file ({n_pages} pages)"),
            });
        }
        if let Some(page) = self.cache.read().expect("page cache lock").get(&id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(page));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut image = vec![0u8; PAGE_SIZE];
        {
            let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
            file.read_exact(&mut image)?;
        }
        let page = Arc::new(Page::from_image(id, &image)?);
        let mut cache = self.cache.write().expect("page cache lock");
        // Two threads may race the same cold page; first write wins and
        // both end up with an identical immutable snapshot.
        let entry = cache.entry(id).or_insert_with(|| Arc::clone(&page));
        let page = Arc::clone(entry);
        if cache.len() > self.capacity {
            let mut resident = self.resident.lock().unwrap_or_else(|e| e.into_inner());
            resident.push_back(id);
            while cache.len() > self.capacity {
                match resident.pop_front() {
                    Some(victim) if victim != id => {
                        cache.remove(&victim);
                    }
                    Some(_) => resident.push_back(id),
                    None => break,
                }
            }
        } else {
            self.resident
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(id);
        }
        Ok(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;
    use std::io::Write;

    fn pager_with_pages(n: usize, capacity: usize) -> (Pager, tempdir::TempDir) {
        let dir = tempdir::TempDir::new();
        let path = dir.path().join("pages.db");
        let mut file = File::create(&path).unwrap();
        for i in 0..n {
            let mut page = Page::new(PageKind::Leaf);
            page.set_payload(format!("page {i}").as_bytes());
            file.write_all(page.sealed_image()).unwrap();
        }
        file.sync_all().unwrap();
        let file = File::open(&path).unwrap();
        (Pager::new(file, n as u64, capacity), dir)
    }

    #[test]
    fn cold_then_warm_reads() {
        let (pager, _dir) = pager_with_pages(4, 16);
        let a = pager.get(2).unwrap();
        assert_eq!(a.payload(), b"page 2");
        let b = pager.get(2).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "warm read must share the snapshot");
        let stats = pager.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn out_of_range_page_is_an_error() {
        let (pager, _dir) = pager_with_pages(2, 16);
        assert!(matches!(
            pager.get(2),
            Err(StorageError::CorruptPage { page: 2, .. })
        ));
    }

    #[test]
    fn eviction_bounds_residency_without_changing_results() {
        let (pager, _dir) = pager_with_pages(64, 8);
        for round in 0..3 {
            for i in 0..64 {
                let page = pager.get(i).unwrap();
                assert_eq!(
                    page.payload(),
                    format!("page {i}").as_bytes(),
                    "round {round}"
                );
            }
        }
        assert!(pager.cache.read().unwrap().len() <= 9);
    }

    /// Minimal self-cleaning temp dir (no external crates in the offline
    /// build).
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempDir(PathBuf);

        impl TempDir {
            pub fn new() -> TempDir {
                static NEXT: AtomicU64 = AtomicU64::new(0);
                let path = std::env::temp_dir().join(format!(
                    "tspdb-pager-test-{}-{}",
                    std::process::id(),
                    NEXT.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&path).unwrap();
                TempDir(path)
            }

            pub fn path(&self) -> &Path {
                &self.0
            }
        }

        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }
}
