//! CSV import/export for time series.
//!
//! A deliberately small, dependency-free reader/writer for the two-column
//! `time,value` format, so real sensor dumps can be loaded in place of the
//! synthetic datasets.

use crate::series::TimeSeries;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Writes a series as `time,value` CSV with a header row.
pub fn write_csv<W: Write>(series: &TimeSeries, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "time,{}", sanitize(series.name()))?;
    for obs in series.iter() {
        writeln!(w, "{},{}", obs.time, fmt_f64(obs.value))?;
    }
    w.flush()
}

/// Reads a `time,value` CSV (with a one-line header naming the value
/// column) back into a [`TimeSeries`].
///
/// Blank lines are skipped; malformed rows produce an error naming the
/// offending line number.
pub fn read_csv<R: Read>(reader: R) -> io::Result<TimeSeries> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "empty CSV"))??;
    let name = header
        .split(',')
        .nth(1)
        .unwrap_or("value")
        .trim()
        .to_string();
    let mut timestamps = Vec::new();
    let mut values = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut parts = trimmed.split(',');
        let parse_err = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("CSV line {}: bad {what}: {trimmed:?}", lineno + 2),
            )
        };
        let t: i64 = parts
            .next()
            .ok_or_else(|| parse_err("time"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("time"))?;
        let v: f64 = parts
            .next()
            .ok_or_else(|| parse_err("value"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("value"))?;
        timestamps.push(t);
        values.push(v);
    }
    if !timestamps.windows(2).all(|w| w[0] < w[1]) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "CSV timestamps are not strictly increasing",
        ));
    }
    Ok(TimeSeries::from_parts(name, timestamps, values))
}

/// Formats a float without losing round-trip precision.
fn fmt_f64(v: f64) -> String {
    // `{}` on f64 is shortest-round-trip in Rust.
    format!("{v}")
}

/// Keeps the header cell single-token so the reader's `split(',')` works.
fn sanitize(name: &str) -> String {
    name.replace(',', "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_series() {
        let s = TimeSeries::regular("temp", 10, 5, vec![1.5, -2.25, 1e-12, 37.125]);
        let mut buf = Vec::new();
        write_csv(&s, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn reader_skips_blank_lines() {
        let csv = "time,x\n1,1.0\n\n2,2.0\n";
        let s = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(), "x");
    }

    #[test]
    fn reader_reports_bad_rows_with_line_numbers() {
        let csv = "time,x\n1,1.0\nbogus,2.0\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn reader_rejects_unordered_timestamps() {
        let csv = "time,x\n5,1.0\n3,2.0\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(read_csv(&b""[..]).is_err());
    }

    #[test]
    fn header_with_commas_is_sanitized() {
        let s = TimeSeries::regular("a,b", 0, 1, vec![1.0]);
        let mut buf = Vec::new();
        write_csv(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("time,a_b\n"));
    }
}
