//! Resampling and gap handling for irregular series.
//!
//! GPS feeds arrive at irregular 1-2 s cadence with occasional dropouts;
//! the sliding-window metrics assume a reasonably regular sequence. This
//! module provides linear-interpolation resampling onto a regular grid and
//! gap detection/filling, so real feeds can be normalised before entering
//! the engine.

use crate::series::TimeSeries;

/// A detected gap: consecutive observations further apart than the
/// declared maximum interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gap {
    /// Timestamp of the last observation before the gap.
    pub from: i64,
    /// Timestamp of the first observation after the gap.
    pub to: i64,
}

impl Gap {
    /// Gap length in ticks.
    pub fn span(&self) -> i64 {
        self.to - self.from
    }
}

/// Finds all gaps longer than `max_interval` ticks.
pub fn find_gaps(series: &TimeSeries, max_interval: i64) -> Vec<Gap> {
    assert!(max_interval > 0, "find_gaps: interval must be positive");
    series
        .timestamps()
        .windows(2)
        .filter(|w| w[1] - w[0] > max_interval)
        .map(|w| Gap {
            from: w[0],
            to: w[1],
        })
        .collect()
}

/// Resamples onto a regular grid `start, start+interval, …` covering the
/// series' time span, linearly interpolating between observations.
///
/// Grid points outside the observed span are not produced (no
/// extrapolation). Returns an empty series for inputs with fewer than two
/// observations.
pub fn resample_linear(series: &TimeSeries, interval: i64) -> TimeSeries {
    assert!(interval > 0, "resample_linear: interval must be positive");
    let ts = series.timestamps();
    let vs = series.values();
    let name = format!("{}_resampled", series.name());
    if ts.len() < 2 {
        return TimeSeries::new(name);
    }
    let start = ts[0];
    let end = ts[ts.len() - 1];
    let mut out_t = Vec::new();
    let mut out_v = Vec::new();
    let mut seg = 0usize; // index of the segment [ts[seg], ts[seg+1]]
    let mut t = start;
    while t <= end {
        while seg + 2 < ts.len() && ts[seg + 1] < t {
            seg += 1;
        }
        let (t0, t1) = (ts[seg], ts[seg + 1]);
        let (v0, v1) = (vs[seg], vs[seg + 1]);
        let v = if t1 == t0 {
            v0
        } else {
            v0 + (v1 - v0) * (t - t0) as f64 / (t1 - t0) as f64
        };
        out_t.push(t);
        out_v.push(v);
        t += interval;
    }
    TimeSeries::from_parts(name, out_t, out_v)
}

/// Fills gaps longer than `max_interval` by inserting linearly interpolated
/// observations every `max_interval` ticks inside each gap; observations
/// outside gaps are preserved exactly.
pub fn fill_gaps(series: &TimeSeries, max_interval: i64) -> TimeSeries {
    assert!(max_interval > 0, "fill_gaps: interval must be positive");
    let ts = series.timestamps();
    let vs = series.values();
    let mut out_t = Vec::with_capacity(ts.len());
    let mut out_v = Vec::with_capacity(vs.len());
    for i in 0..ts.len() {
        if i > 0 {
            let (t0, t1) = (ts[i - 1], ts[i]);
            if t1 - t0 > max_interval {
                let (v0, v1) = (vs[i - 1], vs[i]);
                let mut t = t0 + max_interval;
                while t < t1 {
                    out_t.push(t);
                    out_v.push(v0 + (v1 - v0) * (t - t0) as f64 / (t1 - t0) as f64);
                    t += max_interval;
                }
            }
        }
        out_t.push(ts[i]);
        out_v.push(vs[i]);
    }
    TimeSeries::from_parts(series.name().to_string(), out_t, out_v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn irregular() -> TimeSeries {
        TimeSeries::from_parts(
            "x",
            vec![0, 1, 2, 10, 11, 12],
            vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0],
        )
    }

    #[test]
    fn finds_the_gap() {
        let gaps = find_gaps(&irregular(), 2);
        assert_eq!(gaps, vec![Gap { from: 2, to: 10 }]);
        assert_eq!(gaps[0].span(), 8);
        assert!(find_gaps(&irregular(), 10).is_empty());
    }

    #[test]
    fn resample_reproduces_linear_data_exactly() {
        // The series *is* the line v = t, so any grid reproduces it.
        let r = resample_linear(&irregular(), 3);
        assert_eq!(r.timestamps(), &[0, 3, 6, 9, 12]);
        for obs in r.iter() {
            assert!((obs.value - obs.time as f64).abs() < 1e-12, "{obs:?}");
        }
    }

    #[test]
    fn resample_interpolates_between_points() {
        let s = TimeSeries::from_parts("x", vec![0, 10], vec![0.0, 100.0]);
        let r = resample_linear(&s, 5);
        assert_eq!(r.timestamps(), &[0, 5, 10]);
        assert!((r.values()[1] - 50.0).abs() < 1e-12);
    }

    #[test]
    fn resample_degenerate_inputs() {
        let empty = TimeSeries::new("e");
        assert!(resample_linear(&empty, 5).is_empty());
        let single = TimeSeries::from_parts("s", vec![3], vec![7.0]);
        assert!(resample_linear(&single, 5).is_empty());
    }

    #[test]
    fn fill_gaps_preserves_original_observations() {
        let s = irregular();
        let filled = fill_gaps(&s, 2);
        // Every original observation survives verbatim.
        for obs in s.iter() {
            let i = filled
                .timestamps()
                .iter()
                .position(|&t| t == obs.time)
                .unwrap();
            assert_eq!(filled.values()[i], obs.value);
        }
        // And the gap is bridged at ≤ 2-tick spacing.
        assert!(filled.timestamps().windows(2).all(|w| w[1] - w[0] <= 2));
        // Interpolated values lie on the line (data is linear).
        for obs in filled.iter() {
            assert!((obs.value - obs.time as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn fill_gaps_noop_when_regular() {
        let s = TimeSeries::regular("r", 0, 2, vec![1.0, 2.0, 3.0]);
        assert_eq!(fill_gaps(&s, 2), s);
    }
}
