//! Erroneous-value injection.
//!
//! Mirrors the paper's evaluation procedure for C-GARCH (Section VII-B):
//! "The insertion procedure inserts a pre-specified number of very high (or
//! very low) values uniformly at random in the data." Injection records the
//! ground-truth positions so detection rates can be scored (Fig. 13a).

use crate::series::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use tspdb_stats::descriptive::sample_std;

/// Result of injecting synthetic erroneous values into a series.
#[derive(Debug, Clone)]
pub struct Injection {
    /// The corrupted series.
    pub series: TimeSeries,
    /// Sorted positional indices that were overwritten.
    pub positions: Vec<usize>,
    /// The original (clean) values at those positions.
    pub originals: Vec<f64>,
}

impl Injection {
    /// Number of injected errors.
    pub fn count(&self) -> usize {
        self.positions.len()
    }

    /// Whether position `i` holds an injected error.
    pub fn is_injected(&self, i: usize) -> bool {
        self.positions.binary_search(&i).is_ok()
    }

    /// Fraction of injected positions present in `detected` — the paper's
    /// "percentage of total erroneous values detected" (Fig. 13a). The
    /// `detected` indices need not be sorted.
    pub fn capture_rate(&self, detected: &[usize]) -> f64 {
        if self.positions.is_empty() {
            return f64::NAN;
        }
        let det: BTreeSet<usize> = detected.iter().copied().collect();
        let hit = self.positions.iter().filter(|p| det.contains(p)).count();
        hit as f64 / self.positions.len() as f64
    }
}

/// Configuration for spike injection.
#[derive(Debug, Clone, Copy)]
pub struct SpikeConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of spikes to insert.
    pub count: usize,
    /// Spike magnitude in multiples of the series' global standard
    /// deviation; the actual offset is drawn uniformly from
    /// `[magnitude_lo, magnitude_hi] · σ_global` with random sign.
    pub magnitude_lo: f64,
    /// Upper bound of the magnitude band (see `magnitude_lo`).
    pub magnitude_hi: f64,
    /// Positions below this index are never corrupted (lets experiments
    /// keep a clean warm-up prefix for window initialisation).
    pub protect_prefix: usize,
}

impl Default for SpikeConfig {
    fn default() -> Self {
        SpikeConfig {
            seed: 0xE44,
            count: 25,
            magnitude_lo: 15.0,
            magnitude_hi: 40.0,
            protect_prefix: 0,
        }
    }
}

/// Injects `config.count` spikes uniformly at random (without replacement)
/// into a copy of `series`.
///
/// # Panics
/// Panics when more spikes are requested than eligible positions exist.
pub fn inject_spikes(series: &TimeSeries, config: &SpikeConfig) -> Injection {
    let n = series.len();
    assert!(
        config.protect_prefix < n && config.count <= n - config.protect_prefix,
        "inject_spikes: {} spikes do not fit in {} eligible positions",
        config.count,
        n.saturating_sub(config.protect_prefix)
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sigma = sample_std(series.values()).max(1e-9);

    // Sample distinct positions uniformly at random.
    let mut chosen = BTreeSet::new();
    while chosen.len() < config.count {
        chosen.insert(rng.gen_range(config.protect_prefix..n));
    }
    let positions: Vec<usize> = chosen.into_iter().collect();

    let mut corrupted = series.clone();
    let mut originals = Vec::with_capacity(positions.len());
    for &p in &positions {
        let offset = rng.gen_range(config.magnitude_lo..=config.magnitude_hi) * sigma;
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        originals.push(corrupted.values()[p]);
        corrupted.values_mut()[p] += sign * offset;
    }
    Injection {
        series: corrupted,
        positions,
        originals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TemperatureGenerator;

    fn base() -> TimeSeries {
        TemperatureGenerator::default().generate(2000)
    }

    #[test]
    fn injects_requested_count_at_distinct_positions() {
        let s = base();
        let inj = inject_spikes(
            &s,
            &SpikeConfig {
                count: 50,
                ..Default::default()
            },
        );
        assert_eq!(inj.count(), 50);
        let mut sorted = inj.positions.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "positions must be distinct");
        assert!(inj.positions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn spikes_are_large_outliers() {
        let s = base();
        let sigma = sample_std(s.values());
        let inj = inject_spikes(
            &s,
            &SpikeConfig {
                count: 20,
                ..Default::default()
            },
        );
        for (&p, &orig) in inj.positions.iter().zip(&inj.originals) {
            let delta = (inj.series.values()[p] - orig).abs();
            assert!(
                delta >= 14.0 * sigma,
                "spike at {p} too small: {delta} vs σ {sigma}"
            );
            assert_eq!(orig, s.values()[p]);
        }
    }

    #[test]
    fn non_injected_positions_untouched() {
        let s = base();
        let inj = inject_spikes(
            &s,
            &SpikeConfig {
                count: 10,
                ..Default::default()
            },
        );
        for i in 0..s.len() {
            if !inj.is_injected(i) {
                assert_eq!(s.values()[i], inj.series.values()[i]);
            }
        }
    }

    #[test]
    fn protect_prefix_is_respected() {
        let s = base();
        let inj = inject_spikes(
            &s,
            &SpikeConfig {
                count: 100,
                protect_prefix: 500,
                ..Default::default()
            },
        );
        assert!(inj.positions.iter().all(|&p| p >= 500));
    }

    #[test]
    fn capture_rate_scores_detections() {
        let s = base();
        let inj = inject_spikes(
            &s,
            &SpikeConfig {
                count: 4,
                ..Default::default()
            },
        );
        let all = inj.positions.clone();
        assert_eq!(inj.capture_rate(&all), 1.0);
        assert_eq!(inj.capture_rate(&all[..2]), 0.5);
        assert_eq!(inj.capture_rate(&[]), 0.0);
        // False positives don't inflate the rate.
        let mut with_fp = all.clone();
        with_fp.push(1);
        assert_eq!(inj.capture_rate(&with_fp), 1.0);
    }

    #[test]
    fn injection_is_reproducible() {
        let s = base();
        let c = SpikeConfig::default();
        let a = inject_spikes(&s, &c);
        let b = inject_spikes(&s, &c);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.series, b.series);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn rejects_overfull_injection() {
        let s = TimeSeries::regular("x", 0, 1, vec![0.0; 10]);
        inject_spikes(
            &s,
            &SpikeConfig {
                count: 11,
                ..Default::default()
            },
        );
    }
}
