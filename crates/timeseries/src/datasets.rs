//! Canned datasets mirroring the paper's Table II.
//!
//! The original datasets (EPFL campus temperature, Copenhagen GPS logs) are
//! not redistributable; these constructors produce seeded synthetic
//! stand-ins with the same cardinality, sampling cadence, accuracy scale
//! and — crucially — the same qualitative volatility structure (verified by
//! the Fig. 15 ARCH test in the experiment harness). See DESIGN.md
//! "Substitutions".

use crate::generate::{GpsGenerator, TemperatureGenerator};
use crate::series::TimeSeries;

/// Number of observations in campus-data (paper Table II: 18031).
pub const CAMPUS_LEN: usize = 18_031;
/// Number of observations in car-data (paper Table II: 10473).
pub const CAR_LEN: usize = 10_473;

/// The campus-data stand-in: ambient temperature, 2-minute sampling,
/// 18,031 observations (≈ 25 days).
pub fn campus_data() -> TimeSeries {
    TemperatureGenerator::default().generate(CAMPUS_LEN)
}

/// The car-data stand-in: GPS x-coordinate, 1-2 s sampling, 10,473
/// observations (≈ 5.5 hours).
pub fn car_data() -> TimeSeries {
    GpsGenerator::default().generate(CAR_LEN)
}

/// A row of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset label used throughout the experiments.
    pub name: &'static str,
    /// What the sensor measures.
    pub monitored: &'static str,
    /// Observation count.
    pub count: usize,
    /// Stated sensor accuracy.
    pub accuracy: &'static str,
    /// Sampling interval.
    pub sampling_interval: &'static str,
}

/// Regenerates Table II ("Summary of datasets").
pub fn table2() -> Vec<DatasetSummary> {
    vec![
        DatasetSummary {
            name: "campus-data",
            monitored: "Temperature",
            count: campus_data().len(),
            accuracy: "± 0.3 deg. C",
            sampling_interval: "2 minutes",
        },
        DatasetSummary {
            name: "car-data",
            monitored: "GPS Position",
            count: car_data().len(),
            accuracy: "± 10 meters",
            sampling_interval: "1-2 seconds",
        },
    ]
}

/// The user-defined uniform-thresholding bound `u` appropriate for each
/// dataset: the paper ties uncertainty ranges to sensor accuracy, so we use
/// the Table II accuracy figures.
pub fn uniform_threshold_for(name: &str) -> f64 {
    match name {
        "campus-data" | "temperature" => 0.3,
        "car-data" | "gps_x" => 10.0,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_cardinalities_match_table2() {
        assert_eq!(campus_data().len(), 18_031);
        assert_eq!(car_data().len(), 10_473);
    }

    #[test]
    fn table2_rows_are_consistent() {
        let t = table2();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].count, CAMPUS_LEN);
        assert_eq!(t[1].count, CAR_LEN);
        assert_eq!(t[0].monitored, "Temperature");
        assert_eq!(t[1].monitored, "GPS Position");
    }

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(campus_data().head(100), campus_data().head(100));
        assert_eq!(car_data().head(100), car_data().head(100));
    }

    #[test]
    fn campus_sampling_interval_is_two_minutes() {
        let s = campus_data();
        let ts = s.timestamps();
        assert!(ts.windows(2).all(|w| w[1] - w[0] == 120));
    }

    #[test]
    fn thresholds_follow_sensor_accuracy() {
        assert_eq!(uniform_threshold_for("campus-data"), 0.3);
        assert_eq!(uniform_threshold_for("car-data"), 10.0);
        assert_eq!(uniform_threshold_for("unknown"), 1.0);
    }
}
