//! # tspdb-timeseries
//!
//! Time-series substrate for the `tspdb` workspace:
//!
//! * [`series`] — the [`series::TimeSeries`] container (the paper's
//!   `S = ⟨r_1, …, r_t⟩`) with timestamped access and range extraction.
//! * [`window`] — iteration over every sliding window `S^H_{t-1}`.
//! * [`generate`] — seeded synthetic generators standing in for the
//!   paper's proprietary datasets (see DESIGN.md "Substitutions").
//! * [`errors`] — spike injection replicating the paper's erroneous-value
//!   insertion procedure (Section VII-B).
//! * [`io`] — dependency-free CSV import/export.
//! * [`datasets`] — canned campus-data / car-data constructors and the
//!   Table II summary.
//!
//! ## Quick start
//!
//! ```
//! use tspdb_timeseries::TimeSeries;
//!
//! let s = TimeSeries::regular("temp", 0, 1, vec![20.0, 21.5, 19.8]);
//! assert_eq!(s.len(), 3);
//! assert_eq!(s.values()[1], 21.5);
//! assert_eq!(s.window_before(2, 2), Some(&[20.0, 21.5][..]));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately catches NaN alongside non-positive values
    // in numeric guards; `partial_cmp` obscures that intent.
    clippy::neg_cmp_op_on_partial_ord,
    // Index-based loops mirror the textbook formulations of the numeric
    // kernels (Cholesky, Levinson-Durbin, filters) they implement.
    clippy::needless_range_loop
)]

pub mod datasets;
pub mod errors;
pub mod generate;
pub mod io;
pub mod resample;
pub mod series;
pub mod window;

pub use series::{Observation, TimeSeries};
pub use window::{SlidingWindows, WindowStep};

#[cfg(test)]
mod proptests {
    use crate::series::TimeSeries;
    use crate::window::SlidingWindows;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn window_count_formula(len in 0usize..200, h in 1usize..50) {
            let s = TimeSeries::regular("x", 0, 1, (0..len).map(|i| i as f64).collect());
            let count = SlidingWindows::new(&s, h).count();
            let expected = len.saturating_sub(h);
            prop_assert_eq!(count, expected);
        }

        #[test]
        fn windows_slide_by_one(len in 10usize..100, h in 2usize..8) {
            let s = TimeSeries::regular("x", 0, 1, (0..len).map(|i| i as f64).collect());
            let steps: Vec<_> = SlidingWindows::new(&s, h).collect();
            for pair in steps.windows(2) {
                // Consecutive windows overlap in all but one element.
                prop_assert_eq!(&pair[0].window[1..], &pair[1].window[..h - 1]);
                prop_assert_eq!(pair[0].target_index + 1, pair[1].target_index);
            }
        }

        #[test]
        fn time_range_never_exceeds_bounds(
            len in 1usize..100,
            lo in -50i64..150,
            hi in -50i64..150,
        ) {
            let s = TimeSeries::regular("x", 0, 1, (0..len).map(|i| i as f64).collect());
            let r = s.time_range(lo, hi);
            for t in r.timestamps() {
                prop_assert!(*t >= lo && *t <= hi);
            }
        }

        #[test]
        fn csv_round_trip(vals in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let s = TimeSeries::regular("v", 0, 3, vals);
            let mut buf = Vec::new();
            crate::io::write_csv(&s, &mut buf).unwrap();
            let back = crate::io::read_csv(&buf[..]).unwrap();
            prop_assert_eq!(back, s);
        }
    }
}
