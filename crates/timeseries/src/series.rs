//! Time-series containers.
//!
//! A [`TimeSeries`] is the paper's `S = ⟨r_1, r_2, …, r_t⟩`: a sequence of
//! timestamped raw (imprecise) values. Timestamps are `i64` ticks (the unit
//! is up to the producer — seconds for the GPS dataset, 2-minute slots for
//! the campus dataset) and are required to be strictly increasing.

use std::fmt;

/// A timestamped sequence of raw values.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    timestamps: Vec<i64>,
    values: Vec<f64>,
}

/// One `(time, value)` observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Timestamp tick.
    pub time: i64,
    /// Raw (imprecise) value `r_t`.
    pub value: f64,
}

impl TimeSeries {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            timestamps: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates a series from parallel timestamp/value vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths or timestamps are not
    /// strictly increasing.
    pub fn from_parts(name: impl Into<String>, timestamps: Vec<i64>, values: Vec<f64>) -> Self {
        assert_eq!(
            timestamps.len(),
            values.len(),
            "TimeSeries: timestamp/value length mismatch"
        );
        assert!(
            timestamps.windows(2).all(|w| w[0] < w[1]),
            "TimeSeries: timestamps must be strictly increasing"
        );
        TimeSeries {
            name: name.into(),
            timestamps,
            values,
        }
    }

    /// Creates a regularly sampled series starting at `t0` with the given
    /// tick interval.
    pub fn regular(name: impl Into<String>, t0: i64, interval: i64, values: Vec<f64>) -> Self {
        assert!(
            interval > 0,
            "TimeSeries::regular: interval must be positive"
        );
        let timestamps = (0..values.len() as i64)
            .map(|i| t0 + i * interval)
            .collect();
        TimeSeries {
            name: name.into(),
            timestamps,
            values,
        }
    }

    /// Series name (used as the default column name in the SQL layer).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends an observation.
    ///
    /// # Panics
    /// Panics if `time` does not exceed the last timestamp.
    pub fn push(&mut self, time: i64, value: f64) {
        if let Some(&last) = self.timestamps.last() {
            assert!(time > last, "TimeSeries::push: out-of-order timestamp");
        }
        self.timestamps.push(time);
        self.values.push(value);
    }

    /// The raw values `r_1 .. r_t`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (used by error injection).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The timestamps.
    pub fn timestamps(&self) -> &[i64] {
        &self.timestamps
    }

    /// Observation at positional index `i`.
    pub fn get(&self, i: usize) -> Option<Observation> {
        if i < self.len() {
            Some(Observation {
                time: self.timestamps[i],
                value: self.values[i],
            })
        } else {
            None
        }
    }

    /// Index of the first observation with timestamp ≥ `t`.
    pub fn index_at_or_after(&self, t: i64) -> usize {
        self.timestamps.partition_point(|&ts| ts < t)
    }

    /// Positional sub-range `[start, end)` as a borrowed slice of values.
    pub fn value_slice(&self, start: usize, end: usize) -> &[f64] {
        &self.values[start..end]
    }

    /// The paper's sliding window `S^H_{t-1} = ⟨r_{t−H}, …, r_{t−1}⟩` for
    /// the observation at positional index `t`: the `h` values immediately
    /// *before* index `t`. Returns `None` when fewer than `h` values
    /// precede `t`.
    pub fn window_before(&self, t: usize, h: usize) -> Option<&[f64]> {
        if t > self.len() || t < h || h == 0 {
            return None;
        }
        Some(&self.values[t - h..t])
    }

    /// Iterator over observations.
    pub fn iter(&self) -> impl Iterator<Item = Observation> + '_ {
        self.timestamps
            .iter()
            .zip(&self.values)
            .map(|(&time, &value)| Observation { time, value })
    }

    /// Returns a new series holding the observations with timestamps in
    /// `[t_lo, t_hi]` (inclusive, matching the paper's `WHERE t >= a AND
    /// t <= b` semantics).
    pub fn time_range(&self, t_lo: i64, t_hi: i64) -> TimeSeries {
        let start = self.index_at_or_after(t_lo);
        let end = self.timestamps.partition_point(|&ts| ts <= t_hi).max(start);
        TimeSeries {
            name: self.name.clone(),
            timestamps: self.timestamps[start..end].to_vec(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// Returns a positionally truncated copy with at most `n` leading
    /// observations (used to build experiment workloads of graded size).
    pub fn head(&self, n: usize) -> TimeSeries {
        let n = n.min(self.len());
        TimeSeries {
            name: self.name.clone(),
            timestamps: self.timestamps[..n].to_vec(),
            values: self.values[..n].to_vec(),
        }
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeSeries[{}; {} obs", self.name, self.len())?;
        if !self.is_empty() {
            write!(
                f,
                "; t ∈ [{}, {}]",
                self.timestamps[0],
                self.timestamps[self.len() - 1]
            )?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        TimeSeries::regular("temp", 0, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0])
    }

    #[test]
    fn regular_series_timestamps() {
        let s = sample();
        assert_eq!(s.timestamps(), &[0, 2, 4, 6, 8]);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn window_before_matches_paper_definition() {
        let s = sample();
        // S^3_{t-1} for t = 4 (0-based): values at indices 1, 2, 3.
        assert_eq!(s.window_before(4, 3).unwrap(), &[2.0, 3.0, 4.0]);
        // Not enough history.
        assert!(s.window_before(2, 3).is_none());
        // Degenerate window length.
        assert!(s.window_before(3, 0).is_none());
        // Full-length window ending before the one-past-the-end index.
        assert_eq!(s.window_before(5, 5).unwrap(), s.values());
    }

    #[test]
    fn push_enforces_order() {
        let mut s = sample();
        s.push(10, 6.0);
        assert_eq!(s.len(), 6);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn push_rejects_stale_timestamp() {
        let mut s = sample();
        s.push(8, 9.9);
    }

    #[test]
    fn time_range_is_inclusive() {
        let s = sample();
        let r = s.time_range(2, 6);
        assert_eq!(r.values(), &[2.0, 3.0, 4.0]);
        assert_eq!(r.timestamps(), &[2, 4, 6]);
        // Empty range.
        assert!(s.time_range(100, 200).is_empty());
    }

    #[test]
    fn index_at_or_after_bisects() {
        let s = sample();
        assert_eq!(s.index_at_or_after(0), 0);
        assert_eq!(s.index_at_or_after(3), 2);
        assert_eq!(s.index_at_or_after(4), 2);
        assert_eq!(s.index_at_or_after(9), 5);
    }

    #[test]
    fn head_truncates() {
        let s = sample();
        assert_eq!(s.head(2).values(), &[1.0, 2.0]);
        assert_eq!(s.head(99).len(), 5);
    }

    #[test]
    fn iter_yields_observations() {
        let s = sample();
        let obs: Vec<Observation> = s.iter().collect();
        assert_eq!(
            obs[1],
            Observation {
                time: 2,
                value: 2.0
            }
        );
        assert_eq!(obs.len(), 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_rejects_duplicates() {
        TimeSeries::from_parts("x", vec![0, 1, 1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_is_informative() {
        let s = sample();
        let d = format!("{s}");
        assert!(d.contains("temp"));
        assert!(d.contains("5 obs"));
    }
}
