//! Synthetic time-series generators.
//!
//! The paper evaluates on two proprietary datasets (EPFL campus temperature
//! and Copenhagen GPS logs). Those are not redistributable, so this module
//! provides seeded generators that reproduce the *properties the paper's
//! experiments depend on* (see DESIGN.md "Substitutions"):
//!
//! * [`TemperatureGenerator`] — diurnal trend with volatility bursts around
//!   sunrise/sunset and calm nights (the Fig. 4(a) regimes), strong ARCH
//!   effects (Fig. 15(a)).
//! * [`GpsGenerator`] — stop-and-go vehicle kinematics observed with GPS
//!   noise; a near-integrated series with *milder* volatility clustering
//!   (Fig. 15(b)).
//! * [`ArmaGarchGenerator`] — a textbook ARMA(1,1)+GARCH(1,1) process with
//!   known coefficients, used by the estimation tests to verify parameter
//!   recovery.

use crate::series::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tspdb_stats::Normal;

/// Standard normal draw via inverse-CDF (keeps generators reproducible and
/// independent of `rand`'s normal-sampling internals).
fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    Normal::from_mean_std(0.0, 1.0).sample(rng)
}

/// Ambient-temperature generator mimicking the paper's campus-data.
///
/// The process is `r_t = base(t) + x_t + m_t` where `base` is a diurnal
/// sinusoid with a slow day-to-day drift, `x_t` is an AR(1)-filtered
/// GARCH(1,1) innovation whose unconditional level is modulated by a
/// sunrise/sunset factor (this produces the Region A / Region B volatility
/// regimes of Fig. 4), and `m_t` is white measurement noise at the sensor
/// accuracy scale (±0.3 °C).
#[derive(Debug, Clone)]
pub struct TemperatureGenerator {
    /// RNG seed; equal seeds give identical series.
    pub seed: u64,
    /// Sampling interval in seconds (paper: 2 minutes).
    pub interval_secs: i64,
    /// Mean daily temperature in °C.
    pub daily_mean: f64,
    /// Amplitude of the diurnal cycle in °C.
    pub diurnal_amplitude: f64,
    /// Baseline innovation standard deviation (calm regime).
    pub calm_sigma: f64,
    /// Multiplier applied to the innovation level inside sunrise/sunset
    /// bursts (volatile regime).
    pub burst_factor: f64,
    /// Measurement-noise standard deviation (≈ accuracy / 3).
    pub measurement_sigma: f64,
}

impl Default for TemperatureGenerator {
    fn default() -> Self {
        TemperatureGenerator {
            seed: 0xCA_0175,
            interval_secs: 120,
            daily_mean: 12.0,
            diurnal_amplitude: 6.0,
            calm_sigma: 0.12,
            burst_factor: 5.0,
            measurement_sigma: 0.05,
        }
    }
}

impl TemperatureGenerator {
    /// Generates `n` observations.
    pub fn generate(&self, n: usize) -> TimeSeries {
        const DAY: f64 = 86_400.0;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut values = Vec::with_capacity(n);

        // GARCH(1,1) innovation state: high persistence so conditional
        // heteroskedasticity is visible inside evaluation windows (the
        // Fig. 15 ARCH test runs on 180-sample windows).
        let alpha1 = 0.30;
        let beta1 = 0.65;
        let mut sigma2 = self.calm_sigma * self.calm_sigma;
        let mut prev_a = 0.0;
        // AR(1) colouring of the innovations.
        let ar = 0.9;
        let mut x = 0.0;
        // Slow day-to-day drift of the daily mean (weather fronts).
        let mut drift = 0.0;

        for i in 0..n {
            let t = i as f64 * self.interval_secs as f64;
            let tod = (t % DAY) / DAY; // time of day in [0,1)
            if i % (DAY as usize / self.interval_secs as usize) == 0 {
                drift += randn(&mut rng) * 0.8;
                drift *= 0.9; // mean-revert so temperatures stay plausible
            }
            // Diurnal base curve: coldest ~05:00, warmest ~15:00.
            let base = self.daily_mean
                + drift
                + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * (tod - 0.3125)).sin();
            // Volatility regime: multi-hour bursts around sunrise (~06:30)
            // and sunset (~19:00), calm at night — Regions A and B of
            // Fig. 4(a). Widths of ~0.09 day ≈ 2 h keep the regimes visible
            // inside 180-sample (6 h) analysis windows.
            let bump = |c: f64, w: f64| (-((tod - c) / w).powi(2)).exp();
            let regime = 1.0 + (self.burst_factor - 1.0) * (bump(0.27, 0.09) + bump(0.79, 0.09));
            let omega = (self.calm_sigma * regime).powi(2) * (1.0 - alpha1 - beta1);
            sigma2 = omega + alpha1 * prev_a * prev_a + beta1 * sigma2;
            let a = sigma2.sqrt() * randn(&mut rng);
            prev_a = a;
            x = ar * x + a;
            let measured = base + x + self.measurement_sigma * randn(&mut rng);
            values.push(measured);
        }
        TimeSeries::regular("temperature", 0, self.interval_secs, values)
    }
}

/// GPS x-coordinate generator mimicking the paper's car-data.
///
/// Simulates one vehicle's kinematics along the x axis: an
/// Ornstein–Uhlenbeck velocity process whose target alternates between
/// cruising speeds and full stops (traffic lights), integrated to position
/// and observed with GPS noise (±10 m accuracy). Sampling alternates
/// between 1 s and 2 s to match the paper's "1-2 seconds" interval.
#[derive(Debug, Clone)]
pub struct GpsGenerator {
    /// RNG seed.
    pub seed: u64,
    /// GPS noise standard deviation in metres (≈ accuracy / 3).
    pub noise_sigma: f64,
    /// Mean cruising speed in m/s.
    pub cruise_speed: f64,
}

impl Default for GpsGenerator {
    fn default() -> Self {
        GpsGenerator {
            seed: 0xD0_6CAB,
            noise_sigma: 3.3,
            cruise_speed: 11.0,
        }
    }
}

impl GpsGenerator {
    /// Generates `n` observations.
    pub fn generate(&self, n: usize) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut timestamps = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);

        let mut t = 0i64;
        let mut x = 0.0f64; // true position (m)
        let mut v = 0.0f64; // velocity (m/s)
        let mut target_v = self.cruise_speed;
        let mut phase_left = 40i64; // seconds until the next phase change
        let theta = 0.35; // OU mean-reversion strength
                          // GPS error is strongly autocorrelated (multipath/atmospheric
                          // drift), not white: AR(1) with the stationary std at noise_sigma.
        let rho: f64 = 0.98;
        let innov = self.noise_sigma * (1.0 - rho * rho).sqrt();
        let mut gps_err = 0.0f64;

        for _ in 0..n {
            // Acceleration noise is regime-dependent: a stopped car (engine
            // idling) jitters far less than one weaving through traffic.
            // This produces the mild volatility clustering the paper's
            // Fig. 15(b) reports for car-data.
            let accel_noise = 0.05 + 1.30 * (target_v / self.cruise_speed).min(1.5);
            // 1-2 s sampling, randomised so no deterministic periodicity
            // leaks into the residual autocorrelations.
            let dt = if rng.gen_bool(1.0 / 3.0) { 2.0 } else { 1.0 };
            phase_left -= dt as i64;
            if phase_left <= 0 {
                // Alternate between cruising and stopping; durations drawn
                // anew each phase.
                if target_v > 0.0 {
                    target_v = 0.0;
                    phase_left = rng.gen_range(40..150);
                } else {
                    target_v = self.cruise_speed * rng.gen_range(0.6..1.3);
                    phase_left = rng.gen_range(20..70);
                }
            }
            v += theta * (target_v - v) * dt + accel_noise * dt.sqrt() * randn(&mut rng);
            if v < 0.0 {
                v = 0.0; // cars don't reverse at speed in this scenario
            }
            x += v * dt;
            gps_err = rho * gps_err + innov * randn(&mut rng);
            values.push(x + gps_err);
            timestamps.push(t);
            t += dt as i64;
        }
        TimeSeries::from_parts("gps_x", timestamps, values)
    }
}

/// Parameters of an ARMA(1,1) + GARCH(1,1) data-generating process used by
/// estimation tests: `r_t = c + φ r_{t−1} + θ a_{t−1} + a_t`,
/// `a_t = σ_t ε_t`, `σ²_t = α0 + α1 a²_{t−1} + β1 σ²_{t−1}`.
#[derive(Debug, Clone, Copy)]
pub struct ArmaGarchGenerator {
    /// RNG seed.
    pub seed: u64,
    /// ARMA constant `φ_0`.
    pub c: f64,
    /// AR(1) coefficient `φ_1` (|φ| < 1 for stationarity).
    pub phi: f64,
    /// MA(1) coefficient `θ_1`.
    pub theta: f64,
    /// GARCH constant `α_0 > 0`.
    pub alpha0: f64,
    /// ARCH coefficient `α_1 ≥ 0`.
    pub alpha1: f64,
    /// GARCH coefficient `β_1 ≥ 0`, with `α_1 + β_1 < 1`.
    pub beta1: f64,
}

impl Default for ArmaGarchGenerator {
    fn default() -> Self {
        ArmaGarchGenerator {
            seed: 99,
            c: 0.5,
            phi: 0.7,
            theta: 0.3,
            alpha0: 0.05,
            alpha1: 0.15,
            beta1: 0.8,
        }
    }
}

impl ArmaGarchGenerator {
    /// Simulates `n` observations (after an internal burn-in of 500 steps so
    /// the reported samples come from the stationary distribution).
    pub fn generate(&self, n: usize) -> TimeSeries {
        assert!(
            self.alpha0 > 0.0 && self.alpha1 >= 0.0 && self.beta1 >= 0.0,
            "ArmaGarchGenerator: GARCH coefficients out of range"
        );
        assert!(
            self.alpha1 + self.beta1 < 1.0,
            "ArmaGarchGenerator: α1 + β1 must be < 1"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let burn = 500;
        let mut sigma2 = self.alpha0 / (1.0 - self.alpha1 - self.beta1);
        let mut prev_a = 0.0;
        let mut prev_r = self.c / (1.0 - self.phi);
        let mut out = Vec::with_capacity(n);
        for i in 0..burn + n {
            sigma2 = self.alpha0 + self.alpha1 * prev_a * prev_a + self.beta1 * sigma2;
            let a = sigma2.sqrt() * randn(&mut rng);
            let r = self.c + self.phi * prev_r + self.theta * prev_a + a;
            prev_a = a;
            prev_r = r;
            if i >= burn {
                out.push(r);
            }
        }
        TimeSeries::regular("arma_garch", 0, 1, out)
    }

    /// The innovations' unconditional variance `α0 / (1 − α1 − β1)`.
    pub fn unconditional_variance(&self) -> f64 {
        self.alpha0 / (1.0 - self.alpha1 - self.beta1)
    }
}

/// Simulates a pure Gaussian AR(1) process (homoskedastic — no ARCH
/// effects). Used as the negative control for the ARCH-effect test.
pub fn ar1_series(seed: u64, phi: f64, sigma: f64, n: usize) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = 0.0;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n + 100 {
        x = phi * x + sigma * randn(&mut rng);
        out.push(x);
    }
    TimeSeries::regular("ar1", 0, 1, out.split_off(100))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_stats::descriptive::{mean, rolling_std, sample_std};

    #[test]
    fn temperature_is_reproducible_under_seed() {
        let g = TemperatureGenerator::default();
        let a = g.generate(500);
        let b = g.generate(500);
        assert_eq!(a, b);
        let g2 = TemperatureGenerator {
            seed: 1,
            ..TemperatureGenerator::default()
        };
        assert_ne!(a, g2.generate(500));
    }

    #[test]
    fn temperature_has_plausible_range_and_diurnal_cycle() {
        let s = TemperatureGenerator::default().generate(7200); // 10 days
        let m = mean(s.values());
        assert!((m - 12.0).abs() < 3.0, "mean temperature {m}");
        assert!(s.values().iter().all(|v| (-15.0..45.0).contains(v)));
        // Warmest third of the day should be warmer than the coldest third.
        let per_day = 720;
        let mut day_warm = 0.0;
        let mut day_cold = 0.0;
        for d in 0..10 {
            let day = &s.values()[d * per_day..(d + 1) * per_day];
            day_cold += mean(&day[90..210]); // ~03:00-07:00
            day_warm += mean(&day[390..510]); // ~13:00-17:00
        }
        assert!(
            day_warm / 10.0 > day_cold / 10.0 + 3.0,
            "diurnal cycle missing: warm {day_warm} vs cold {day_cold}"
        );
    }

    #[test]
    fn temperature_volatility_varies_over_day() {
        // The defining property for the paper: the rolling std must differ
        // markedly between regimes (Fig. 4).
        let s = TemperatureGenerator::default().generate(7200);
        let r = rolling_std(s.values(), 60);
        let max = r.iter().cloned().fold(0.0, f64::max);
        let min = r.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 2.5,
            "volatility regimes too uniform: max {max}, min {min}"
        );
    }

    #[test]
    fn gps_is_monotone_ish_and_noisy() {
        let s = GpsGenerator::default().generate(2000);
        assert_eq!(s.len(), 2000);
        // The car drives forward overall.
        assert!(s.values()[1999] > s.values()[0] + 1000.0);
        // Timestamps follow the 1-2 s pattern and strictly increase.
        let ts = s.timestamps();
        assert!(ts.windows(2).all(|w| (1..=2).contains(&(w[1] - w[0]))));
    }

    #[test]
    fn gps_has_stop_phases() {
        let s = GpsGenerator::default().generate(4000);
        // During a stop the position barely moves for ≥ 10 consecutive
        // samples (aside from noise); detect at least one such plateau.
        let vals = s.values();
        let mut plateau = 0usize;
        let mut found = false;
        for w in vals.windows(2) {
            if (w[1] - w[0]).abs() < 8.0 {
                plateau += 1;
                if plateau >= 10 {
                    found = true;
                    break;
                }
            } else {
                plateau = 0;
            }
        }
        assert!(found, "no stop-and-go plateau found");
    }

    #[test]
    fn arma_garch_moments_match_theory() {
        let g = ArmaGarchGenerator::default();
        let s = g.generate(60_000);
        // Mean of ARMA(1,1): c / (1 − φ).
        let theo_mean = g.c / (1.0 - g.phi);
        let m = mean(s.values());
        assert!((m - theo_mean).abs() < 0.1, "mean {m} vs {theo_mean}");
        // Variance of ARMA(1,1) driven by innovations of variance σ²_a:
        // σ²_a (1 + 2φθ + θ²) / (1 − φ²).
        let va = g.unconditional_variance();
        let theo_var =
            va * (1.0 + 2.0 * g.phi * g.theta + g.theta * g.theta) / (1.0 - g.phi * g.phi);
        let sd = sample_std(s.values());
        assert!(
            (sd * sd - theo_var).abs() / theo_var < 0.15,
            "var {} vs {theo_var}",
            sd * sd
        );
    }

    #[test]
    fn arma_garch_exhibits_volatility_clustering() {
        let s = ArmaGarchGenerator::default().generate(20_000);
        // Squared first differences should be autocorrelated.
        let diffs: Vec<f64> = s.values().windows(2).map(|w| w[1] - w[0]).collect();
        let sq: Vec<f64> = diffs.iter().map(|d| d * d).collect();
        let ac = tspdb_stats::descriptive::autocorrelations(&sq, 1);
        assert!(
            ac[1] > 0.05,
            "no ARCH effect in generator output: {}",
            ac[1]
        );
    }

    #[test]
    fn ar1_series_has_no_volatility_clustering() {
        let s = ar1_series(5, 0.6, 1.0, 20_000);
        let resid: Vec<f64> = s.values().windows(2).map(|w| w[1] - 0.6 * w[0]).collect();
        let sq: Vec<f64> = resid.iter().map(|d| d * d).collect();
        let ac = tspdb_stats::descriptive::autocorrelations(&sq, 1);
        assert!(ac[1].abs() < 0.05, "AR(1) control shows ARCH: {}", ac[1]);
    }

    #[test]
    #[should_panic(expected = "α1 + β1")]
    fn arma_garch_rejects_nonstationary_garch() {
        ArmaGarchGenerator {
            alpha1: 0.6,
            beta1: 0.5,
            ..ArmaGarchGenerator::default()
        }
        .generate(10);
    }
}
