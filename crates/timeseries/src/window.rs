//! Sliding-window iteration.
//!
//! The dynamic density metrics consume a sliding window `S^H_{t-1}` and
//! predict the density of `r_t`. [`SlidingWindows`] iterates every such
//! `(window, target index)` pair of a series — the loop structure used by
//! the paper's evaluation ("we run the ARMA-GARCH algorithm on all sliding
//! windows `S^H_{t-1}` of a time series where `H+1 ≤ t ≤ t_m`").

use crate::series::TimeSeries;

/// Iterator over all `(t, S^H_{t-1})` pairs of a series: for every target
/// index `t` with at least `h` predecessors, yields the window of the `h`
/// values before `t` together with `t` itself.
pub struct SlidingWindows<'a> {
    values: &'a [f64],
    h: usize,
    t: usize,
}

impl<'a> SlidingWindows<'a> {
    /// Creates the iterator; yields nothing when `h == 0` or the series is
    /// shorter than `h + 1`.
    pub fn new(series: &'a TimeSeries, h: usize) -> Self {
        SlidingWindows {
            values: series.values(),
            h,
            t: h,
        }
    }

    /// Creates the iterator over a bare slice (no timestamps needed).
    pub fn over_slice(values: &'a [f64], h: usize) -> Self {
        SlidingWindows { values, h, t: h }
    }
}

/// One sliding-window step: the history window and the index of the value
/// the metric must predict.
#[derive(Debug, Clone, Copy)]
pub struct WindowStep<'a> {
    /// The paper's `S^H_{t-1}`.
    pub window: &'a [f64],
    /// Positional index `t` of the value to predict.
    pub target_index: usize,
    /// The observed raw value `r_t` (used afterwards for the probability
    /// integral transform).
    pub target: f64,
}

impl<'a> Iterator for SlidingWindows<'a> {
    type Item = WindowStep<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.h == 0 || self.t >= self.values.len() {
            return None;
        }
        let step = WindowStep {
            window: &self.values[self.t - self.h..self.t],
            target_index: self.t,
            target: self.values[self.t],
        };
        self.t += 1;
        Some(step)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = if self.h == 0 || self.t >= self.values.len() {
            0
        } else {
            self.values.len() - self.t
        };
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for SlidingWindows<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_every_window() {
        let s = TimeSeries::regular("x", 0, 1, vec![10.0, 11.0, 12.0, 13.0, 14.0]);
        let steps: Vec<_> = SlidingWindows::new(&s, 2).collect();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].window, &[10.0, 11.0]);
        assert_eq!(steps[0].target_index, 2);
        assert_eq!(steps[0].target, 12.0);
        assert_eq!(steps[2].window, &[12.0, 13.0]);
        assert_eq!(steps[2].target, 14.0);
    }

    #[test]
    fn empty_when_series_too_short() {
        let s = TimeSeries::regular("x", 0, 1, vec![1.0, 2.0]);
        assert_eq!(SlidingWindows::new(&s, 2).count(), 0);
        assert_eq!(SlidingWindows::new(&s, 5).count(), 0);
    }

    #[test]
    fn zero_window_yields_nothing() {
        let s = TimeSeries::regular("x", 0, 1, vec![1.0, 2.0, 3.0]);
        assert_eq!(SlidingWindows::new(&s, 0).count(), 0);
    }

    #[test]
    fn exact_size_hint() {
        let s = TimeSeries::regular("x", 0, 1, (0..100).map(|i| i as f64).collect());
        let it = SlidingWindows::new(&s, 30);
        assert_eq!(it.len(), 70);
    }

    #[test]
    fn over_slice_matches_series_version() {
        let vals = [1.0, 4.0, 9.0, 16.0, 25.0];
        let s = TimeSeries::regular("x", 0, 1, vals.to_vec());
        let a: Vec<_> = SlidingWindows::new(&s, 3).map(|w| w.target).collect();
        let b: Vec<_> = SlidingWindows::over_slice(&vals, 3)
            .map(|w| w.target)
            .collect();
        assert_eq!(a, b);
    }
}
