//! Scalar linear-Gaussian state-space model: Kalman filter, RTS smoother and
//! EM parameter estimation.
//!
//! The paper's Kalman-GARCH metric infers the expected true value with the
//! state-space pair (eq. 7-8):
//!
//! ```text
//! state:       r̂_i = c_1 · r̂_{i−1} + e_{i−1},   e ~ N(0, σ²_e)
//! observation: r_i = c_2 · r̂_i + η_i,            η ~ N(0, σ²_η)
//! ```
//!
//! We fix `c_2 = 1` (the pair `(c_2, σ²_e)` is not jointly identifiable
//! from a single series) and estimate `(c_1, σ²_e, σ²_η)` by
//! expectation-maximisation over the smoothed state moments — the iterative
//! EM whose "slow convergence" the paper cites as the reason Kalman-GARCH
//! trails ARMA-GARCH in Fig. 11. That cost profile is intentional here.

use tspdb_stats::error::StatsError;

/// Parameters of the scalar state-space model (with `c_2 = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanParams {
    /// State transition coefficient `c_1`.
    pub c1: f64,
    /// State noise variance `σ²_e`.
    pub q: f64,
    /// Observation noise variance `σ²_η`.
    pub r: f64,
    /// Initial state mean.
    pub mu0: f64,
    /// Initial state variance.
    pub p0: f64,
}

/// Output of one Kalman filtering pass.
#[derive(Debug, Clone)]
pub struct FilterResult {
    /// Filtered state means `x_{i|i}`.
    pub filtered_mean: Vec<f64>,
    /// Filtered state variances `P_{i|i}`.
    pub filtered_var: Vec<f64>,
    /// One-step predicted state means `x_{i|i−1}`.
    pub predicted_mean: Vec<f64>,
    /// One-step predicted state variances `P_{i|i−1}`.
    pub predicted_var: Vec<f64>,
    /// Innovations `v_i = y_i − x_{i|i−1}` (the `a_i` fed to GARCH).
    pub innovations: Vec<f64>,
    /// Innovation variances `F_i`.
    pub innovation_var: Vec<f64>,
    /// Gaussian log-likelihood of the observations.
    pub loglik: f64,
    /// Final Kalman gain (needed by the lag-one smoother).
    pub last_gain: f64,
}

/// Runs the Kalman filter over `y`.
pub fn kalman_filter(y: &[f64], p: &KalmanParams) -> FilterResult {
    let n = y.len();
    let mut filtered_mean = Vec::with_capacity(n);
    let mut filtered_var = Vec::with_capacity(n);
    let mut predicted_mean = Vec::with_capacity(n);
    let mut predicted_var = Vec::with_capacity(n);
    let mut innovations = Vec::with_capacity(n);
    let mut innovation_var = Vec::with_capacity(n);
    let mut loglik = 0.0;
    let mut x = p.mu0;
    let mut pv = p.p0;
    let mut gain = 0.0;
    for &obs in y {
        // Predict.
        let xp = p.c1 * x;
        let pp = p.c1 * p.c1 * pv + p.q;
        // Update (c2 = 1).
        let f = pp + p.r;
        let v = obs - xp;
        gain = pp / f;
        x = xp + gain * v;
        pv = (1.0 - gain) * pp;
        predicted_mean.push(xp);
        predicted_var.push(pp);
        filtered_mean.push(x);
        filtered_var.push(pv);
        innovations.push(v);
        innovation_var.push(f);
        loglik += -0.5 * ((2.0 * std::f64::consts::PI * f).ln() + v * v / f);
    }
    FilterResult {
        filtered_mean,
        filtered_var,
        predicted_mean,
        predicted_var,
        innovations,
        innovation_var,
        loglik,
        last_gain: gain,
    }
}

/// Output of the Rauch–Tung–Striebel smoother.
#[derive(Debug, Clone)]
pub struct SmootherResult {
    /// Smoothed state means `x_{i|n}`.
    pub mean: Vec<f64>,
    /// Smoothed state variances `P_{i|n}`.
    pub var: Vec<f64>,
    /// Lag-one smoothed covariances `P_{i,i−1|n}` (index 0 unused).
    pub lag_one_cov: Vec<f64>,
}

/// Runs the RTS smoother over a filter pass.
pub fn rts_smoother(filter: &FilterResult, p: &KalmanParams) -> SmootherResult {
    let n = filter.filtered_mean.len();
    let mut mean = filter.filtered_mean.clone();
    let mut var = filter.filtered_var.clone();
    let mut gains = vec![0.0; n]; // J_i
    for i in (0..n - 1).rev() {
        let j = filter.filtered_var[i] * p.c1 / filter.predicted_var[i + 1];
        gains[i] = j;
        mean[i] = filter.filtered_mean[i] + j * (mean[i + 1] - filter.predicted_mean[i + 1]);
        var[i] = filter.filtered_var[i] + j * j * (var[i + 1] - filter.predicted_var[i + 1]);
    }
    // Lag-one covariance recursion (Shumway & Stoffer, Property 6.3).
    let mut lag_one = vec![0.0; n];
    if n >= 2 {
        lag_one[n - 1] = (1.0 - filter.last_gain) * p.c1 * filter.filtered_var[n - 2];
        for i in (1..n - 1).rev() {
            lag_one[i] = filter.filtered_var[i] * gains[i - 1]
                + gains[i] * (lag_one[i + 1] - p.c1 * filter.filtered_var[i]) * gains[i - 1];
        }
    }
    SmootherResult {
        mean,
        var,
        lag_one_cov: lag_one,
    }
}

/// A state-space model fitted by EM.
#[derive(Debug, Clone)]
pub struct KalmanFit {
    /// Estimated parameters.
    pub params: KalmanParams,
    /// Log-likelihood trace, one entry per EM iteration (non-decreasing up
    /// to numerical tolerance — a classic EM invariant the tests check).
    pub loglik_trace: Vec<f64>,
    /// Number of EM iterations performed.
    pub iterations: usize,
    /// Final filter pass under the estimated parameters.
    pub filter: FilterResult,
}

impl KalmanFit {
    /// One-step-ahead forecast of the next observation:
    /// `r̂_t = c_1 · x_{n|n}` (with `c_2 = 1`).
    pub fn forecast_next(&self) -> f64 {
        self.params.c1
            * self
                .filter
                .filtered_mean
                .last()
                .copied()
                .unwrap_or(self.params.mu0)
    }

    /// The innovation sequence (one-step prediction errors) — the `a_i`
    /// inputs for the GARCH stage of Kalman-GARCH.
    pub fn innovations(&self) -> &[f64] {
        &self.filter.innovations
    }
}

/// EM configuration.
#[derive(Debug, Clone, Copy)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Relative log-likelihood improvement below which EM stops.
    pub tol: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            max_iter: 50,
            tol: 1e-6,
        }
    }
}

/// Estimates `(c_1, σ²_e, σ²_η)` by EM on the observed series.
///
/// Requires at least 8 observations and a non-constant series.
pub fn fit_em(y: &[f64], config: &EmConfig) -> Result<KalmanFit, StatsError> {
    let n = y.len();
    if n < 8 {
        return Err(StatsError::InsufficientData { needed: 8, got: n });
    }
    let var = tspdb_stats::descriptive::sample_variance(y);
    if !(var > 0.0) {
        return Err(StatsError::DegenerateInput(
            "Kalman EM: constant series".into(),
        ));
    }
    let mut params = KalmanParams {
        c1: 1.0,
        q: var * 0.5,
        r: var * 0.5,
        mu0: y[0],
        p0: var,
    };
    let mut trace = Vec::with_capacity(config.max_iter);
    let mut last_ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    for _ in 0..config.max_iter {
        iterations += 1;
        let filter = kalman_filter(y, &params);
        trace.push(filter.loglik);
        let smooth = rts_smoother(&filter, &params);

        // Sufficient statistics over i = 1..n−1 (pairs (i, i−1)).
        let mut s11 = 0.0;
        let mut s10 = 0.0;
        let mut s00 = 0.0;
        for i in 1..n {
            s11 += smooth.var[i] + smooth.mean[i] * smooth.mean[i];
            s10 += smooth.lag_one_cov[i] + smooth.mean[i] * smooth.mean[i - 1];
            s00 += smooth.var[i - 1] + smooth.mean[i - 1] * smooth.mean[i - 1];
        }
        let c1_new = if s00 > 0.0 { s10 / s00 } else { params.c1 };
        let q_new = ((s11 - c1_new * s10) / (n - 1) as f64).max(1e-12);
        let mut r_new = 0.0;
        for i in 0..n {
            let d = y[i] - smooth.mean[i];
            r_new += d * d + smooth.var[i];
        }
        let r_new = (r_new / n as f64).max(1e-12);
        params = KalmanParams {
            c1: c1_new,
            q: q_new,
            r: r_new,
            mu0: smooth.mean[0],
            p0: params.p0,
        };

        let ll = filter.loglik;
        let converged = (ll - last_ll).abs() < config.tol * (1.0 + ll.abs());
        last_ll = ll;
        if converged {
            break;
        }
    }
    let filter = kalman_filter(y, &params);
    Ok(KalmanFit {
        params,
        loglik_trace: trace,
        iterations,
        filter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tspdb_stats::Normal;

    /// Simulates the state-space model with known parameters.
    fn simulate(p: &KalmanParams, n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let std_e = Normal::from_mean_std(0.0, p.q.sqrt());
        let std_eta = Normal::from_mean_std(0.0, p.r.sqrt());
        let mut x = p.mu0;
        let mut states = Vec::with_capacity(n);
        let mut obs = Vec::with_capacity(n);
        for _ in 0..n {
            x = p.c1 * x + std_e.sample(&mut rng);
            states.push(x);
            obs.push(x + std_eta.sample(&mut rng));
        }
        (states, obs)
    }

    #[test]
    fn filter_tracks_the_state() {
        let p = KalmanParams {
            c1: 0.95,
            q: 0.1,
            r: 1.0,
            mu0: 0.0,
            p0: 1.0,
        };
        let (states, obs) = simulate(&p, 2000, 1);
        let f = kalman_filter(&obs, &p);
        // Filtered estimates must beat the raw observations at recovering
        // the latent state.
        let err_filter: f64 = states
            .iter()
            .zip(&f.filtered_mean)
            .map(|(s, m)| (s - m) * (s - m))
            .sum::<f64>()
            / states.len() as f64;
        let err_raw: f64 = states
            .iter()
            .zip(&obs)
            .map(|(s, o)| (s - o) * (s - o))
            .sum::<f64>()
            / states.len() as f64;
        assert!(
            err_filter < err_raw * 0.5,
            "filter MSE {err_filter} not ≪ raw MSE {err_raw}"
        );
    }

    #[test]
    fn smoother_improves_on_filter() {
        let p = KalmanParams {
            c1: 0.9,
            q: 0.2,
            r: 1.5,
            mu0: 0.0,
            p0: 1.0,
        };
        let (states, obs) = simulate(&p, 1500, 2);
        let f = kalman_filter(&obs, &p);
        let s = rts_smoother(&f, &p);
        let mse = |est: &[f64]| {
            states
                .iter()
                .zip(est)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / states.len() as f64
        };
        assert!(
            mse(&s.mean) < mse(&f.filtered_mean) * 1.01,
            "smoother should not be worse than filter"
        );
        // Smoothed variances are no larger than filtered ones (information
        // can only grow).
        for (sv, fv) in s.var.iter().zip(&f.filtered_var) {
            assert!(sv <= &(fv * 1.0001));
        }
    }

    #[test]
    fn em_loglik_is_monotone() {
        let p = KalmanParams {
            c1: 0.98,
            q: 0.05,
            r: 0.8,
            mu0: 0.0,
            p0: 1.0,
        };
        let (_, obs) = simulate(&p, 600, 3);
        let fit = fit_em(&obs, &EmConfig::default()).unwrap();
        for w in fit.loglik_trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6 * (1.0 + w[0].abs()),
                "EM log-likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn em_recovers_transition_coefficient() {
        let p = KalmanParams {
            c1: 0.9,
            q: 0.3,
            r: 1.0,
            mu0: 0.0,
            p0: 1.0,
        };
        let (_, obs) = simulate(&p, 4000, 4);
        let fit = fit_em(
            &obs,
            &EmConfig {
                max_iter: 100,
                tol: 1e-9,
            },
        )
        .unwrap();
        assert!(
            (fit.params.c1 - 0.9).abs() < 0.05,
            "c1 = {} ≉ 0.9",
            fit.params.c1
        );
        // Noise variances land in the right order of magnitude.
        assert!(
            fit.params.q > 0.05 && fit.params.q < 1.5,
            "q = {}",
            fit.params.q
        );
        assert!(
            fit.params.r > 0.3 && fit.params.r < 2.5,
            "r = {}",
            fit.params.r
        );
    }

    #[test]
    fn forecast_next_uses_transition() {
        let p = KalmanParams {
            c1: 0.5,
            q: 0.1,
            r: 0.1,
            mu0: 0.0,
            p0: 1.0,
        };
        let (_, obs) = simulate(&p, 100, 5);
        let fit = fit_em(&obs, &EmConfig::default()).unwrap();
        let f = fit.forecast_next();
        let last = fit.filter.filtered_mean.last().unwrap();
        assert!((f - fit.params.c1 * last).abs() < 1e-12);
    }

    #[test]
    fn innovations_have_reasonable_scale() {
        let p = KalmanParams {
            c1: 1.0,
            q: 0.01,
            r: 1.0,
            mu0: 0.0,
            p0: 1.0,
        };
        let (_, obs) = simulate(&p, 1000, 6);
        let fit = fit_em(&obs, &EmConfig::default()).unwrap();
        let innov_var = tspdb_stats::descriptive::sample_variance(&fit.innovations()[20..]);
        // Innovation variance ≈ predicted var + obs var ≈ 1.0-1.2 here.
        assert!(
            innov_var > 0.5 && innov_var < 2.0,
            "innovation variance {innov_var}"
        );
    }

    #[test]
    fn rejects_tiny_and_constant_input() {
        assert!(fit_em(&[1.0; 4], &EmConfig::default()).is_err());
        assert!(fit_em(&[2.0; 50], &EmConfig::default()).is_err());
    }
}
