//! GARCH(m, s) conditional-variance estimation and forecasting.
//!
//! The paper (Section IV-A) models time-varying volatility with
//!
//! ```text
//! a_i = σ_i ε_i,    σ²_i = α_0 + Σ_{j=1..m} α_j a²_{i−j} + Σ_{j=1..s} β_j σ²_{i−j}
//! ```
//!
//! subject to `α_0 > 0`, `α_j ≥ 0`, `β_j ≥ 0` and `Σ(α_j + β_j) < 1`, and
//! restricts itself to GARCH(1,1) in practice ("for a higher order GARCH
//! model specifying the model order is a difficult task"). We follow suit:
//! estimation targets GARCH(1,1) via Gaussian quasi-maximum likelihood over
//! an unconstrained reparametrisation (so the Nelder–Mead iterates can never
//! leave the admissible region), while forecasting (eq. 6) supports the
//! general (m, s) recursion.

use tspdb_stats::descriptive::sample_variance;
use tspdb_stats::error::StatsError;
use tspdb_stats::optimize::NelderMead;

/// A fitted GARCH(1,1) model.
#[derive(Debug, Clone)]
pub struct Garch11Fit {
    /// Constant `α_0 > 0`.
    pub alpha0: f64,
    /// ARCH coefficient `α_1 ≥ 0`.
    pub alpha1: f64,
    /// GARCH coefficient `β_1 ≥ 0` with `α_1 + β_1 < 1`.
    pub beta1: f64,
    /// In-sample conditional variances `σ²_i`, aligned with the residuals
    /// used for fitting.
    pub sigma2: Vec<f64>,
    /// Negative Gaussian quasi-log-likelihood at the optimum (lower is a
    /// better fit).
    pub nll: f64,
    /// Whether the optimizer met its convergence tolerances.
    pub converged: bool,
}

impl Garch11Fit {
    /// Volatility persistence `α_1 + β_1`.
    pub fn persistence(&self) -> f64 {
        self.alpha1 + self.beta1
    }

    /// Unconditional variance `α_0 / (1 − α_1 − β_1)`.
    pub fn unconditional_variance(&self) -> f64 {
        self.alpha0 / (1.0 - self.persistence())
    }

    /// One-step-ahead variance forecast `σ̂²_t` (paper eq. 6) given the most
    /// recent residual and the most recent conditional variance.
    pub fn forecast_next(&self, last_a: f64, last_sigma2: f64) -> f64 {
        self.alpha0 + self.alpha1 * last_a * last_a + self.beta1 * last_sigma2
    }

    /// One-step forecast using the fit's own in-sample tail state.
    pub fn forecast_from_fit(&self, residuals: &[f64]) -> f64 {
        let last_a = residuals.last().copied().unwrap_or(0.0);
        let last_s2 = self
            .sigma2
            .last()
            .copied()
            .unwrap_or_else(|| self.unconditional_variance());
        self.forecast_next(last_a, last_s2)
    }
}

/// Transforms the unconstrained optimizer vector into admissible
/// `(α0, α1, β1)`:
///
/// * `α0 = exp(x0)` ensures positivity;
/// * persistence `s = sigmoid(x1) · 0.9999` keeps `α1 + β1 < 1`;
/// * the share `u = sigmoid(x2)` splits persistence into `α1 = s·u`,
///   `β1 = s·(1−u)`.
fn transform(x: &[f64]) -> (f64, f64, f64) {
    let sigmoid = |v: f64| 1.0 / (1.0 + (-v).exp());
    let alpha0 = x[0].exp();
    let s = sigmoid(x[1]) * 0.9999;
    let u = sigmoid(x[2]);
    (alpha0, s * u, s * (1.0 - u))
}

/// Gaussian quasi-negative-log-likelihood of GARCH(1,1) on `residuals`,
/// initialised at the sample variance.
fn garch11_nll(params: (f64, f64, f64), residuals: &[f64], init_var: f64) -> (f64, Vec<f64>) {
    let (a0, a1, b1) = params;
    let n = residuals.len();
    let mut sigma2 = Vec::with_capacity(n);
    let mut s2 = init_var.max(1e-12);
    let mut nll = 0.0;
    for (i, &a) in residuals.iter().enumerate() {
        if i > 0 {
            let prev = residuals[i - 1];
            s2 = a0 + a1 * prev * prev + b1 * s2;
        }
        let s2c = s2.max(1e-12);
        nll += 0.5 * (s2c.ln() + a * a / s2c);
        sigma2.push(s2c);
    }
    (nll, sigma2)
}

/// Fits GARCH(1,1) to a residual series by quasi-MLE.
///
/// Requires at least 20 residuals (below that the likelihood surface is too
/// flat to say anything about persistence). A degenerate (all-zero) residual
/// series is rejected.
pub fn fit_garch11(residuals: &[f64]) -> Result<Garch11Fit, StatsError> {
    let n = residuals.len();
    if n < 20 {
        return Err(StatsError::InsufficientData { needed: 20, got: n });
    }
    let var = sample_variance(residuals);
    if !(var > 0.0) {
        return Err(StatsError::DegenerateInput(
            "GARCH: residuals have zero variance".into(),
        ));
    }

    // Start at persistence 0.9 split 20/80 between ARCH and GARCH terms —
    // the classic initial guess for (1,1) fits on sensor/financial data.
    let x0 = [
        (var * 0.1).max(1e-12).ln(),
        (0.9f64 / 0.1f64).ln(), // sigmoid^{-1}(0.9)
        (0.2f64 / 0.8f64).ln(), // sigmoid^{-1}(0.2)
    ];
    let nm = NelderMead {
        max_iter: 300,
        f_tol: 1e-9,
        x_tol: 1e-7,
        initial_step: 0.25,
    };
    let res = nm.minimize(|x| garch11_nll(transform(x), residuals, var).0, &x0);
    let (alpha0, alpha1, beta1) = transform(&res.x);
    let (nll, sigma2) = garch11_nll((alpha0, alpha1, beta1), residuals, var);
    Ok(Garch11Fit {
        alpha0,
        alpha1,
        beta1,
        sigma2,
        nll,
        converged: res.converged,
    })
}

/// General GARCH(m, s) one-step variance forecast (paper eq. 6): given
/// coefficient vectors and the trailing residuals / conditional variances
/// (most recent last), computes
/// `σ̂²_t = α_0 + Σ α_j a²_{t−j} + Σ β_j σ²_{t−j}`.
pub fn garch_forecast(
    alpha0: f64,
    alpha: &[f64],
    beta: &[f64],
    recent_residuals: &[f64],
    recent_sigma2: &[f64],
) -> Result<f64, StatsError> {
    if recent_residuals.len() < alpha.len() {
        return Err(StatsError::InsufficientData {
            needed: alpha.len(),
            got: recent_residuals.len(),
        });
    }
    if recent_sigma2.len() < beta.len() {
        return Err(StatsError::InsufficientData {
            needed: beta.len(),
            got: recent_sigma2.len(),
        });
    }
    let mut s2 = alpha0;
    let nr = recent_residuals.len();
    for (j, &aj) in alpha.iter().enumerate() {
        let a = recent_residuals[nr - 1 - j];
        s2 += aj * a * a;
    }
    let ns = recent_sigma2.len();
    for (j, &bj) in beta.iter().enumerate() {
        s2 += bj * recent_sigma2[ns - 1 - j];
    }
    Ok(s2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_timeseries::generate::ArmaGarchGenerator;

    /// Pure GARCH(1,1) innovations (no ARMA structure).
    fn garch_residuals(n: usize, seed: u64) -> Vec<f64> {
        let g = ArmaGarchGenerator {
            seed,
            c: 0.0,
            phi: 0.0,
            theta: 0.0,
            alpha0: 0.05,
            alpha1: 0.15,
            beta1: 0.8,
        };
        g.generate(n).values().to_vec()
    }

    #[test]
    fn recovers_garch11_parameters_on_long_sample() {
        let a = garch_residuals(8000, 42);
        let fit = fit_garch11(&a).unwrap();
        assert!(
            (fit.alpha1 - 0.15).abs() < 0.05,
            "α1 = {} ≉ 0.15",
            fit.alpha1
        );
        assert!((fit.beta1 - 0.8).abs() < 0.08, "β1 = {} ≉ 0.8", fit.beta1);
        assert!(
            (fit.unconditional_variance() - 1.0).abs() < 0.25,
            "unconditional var {}",
            fit.unconditional_variance()
        );
    }

    #[test]
    fn constraints_always_hold() {
        for seed in 0..5 {
            let a = garch_residuals(300, seed);
            let fit = fit_garch11(&a).unwrap();
            assert!(fit.alpha0 > 0.0);
            assert!(fit.alpha1 >= 0.0);
            assert!(fit.beta1 >= 0.0);
            assert!(fit.persistence() < 1.0);
        }
    }

    #[test]
    fn fitted_nll_beats_true_parameters_or_ties() {
        // The QMLE optimum on this sample cannot be worse than the
        // generating parameters evaluated on the same sample.
        let a = garch_residuals(2000, 7);
        let var = sample_variance(&a);
        let fit = fit_garch11(&a).unwrap();
        let (true_nll, _) = garch11_nll((0.05, 0.15, 0.8), &a, var);
        assert!(
            fit.nll <= true_nll + 1e-6,
            "fitted nll {} > true nll {true_nll}",
            fit.nll
        );
    }

    #[test]
    fn volatility_tracks_bursts() {
        // After a large shock, the fitted conditional variance must rise.
        let mut a = garch_residuals(500, 3);
        a[250] = 8.0; // inject a shock
        let fit = fit_garch11(&a).unwrap();
        assert!(
            fit.sigma2[251] > fit.sigma2[249] * 1.5,
            "σ² did not react to the shock: {} vs {}",
            fit.sigma2[251],
            fit.sigma2[249]
        );
    }

    #[test]
    fn forecast_next_applies_recursion() {
        let fit = Garch11Fit {
            alpha0: 0.1,
            alpha1: 0.2,
            beta1: 0.5,
            sigma2: vec![1.0],
            nll: 0.0,
            converged: true,
        };
        let f = fit.forecast_next(2.0, 1.0);
        assert!((f - (0.1 + 0.2 * 4.0 + 0.5 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn general_forecast_matches_garch11_special_case() {
        let fit = Garch11Fit {
            alpha0: 0.1,
            alpha1: 0.2,
            beta1: 0.5,
            sigma2: vec![],
            nll: 0.0,
            converged: true,
        };
        let direct = fit.forecast_next(1.5, 0.8);
        let general = garch_forecast(0.1, &[0.2], &[0.5], &[9.0, 1.5], &[7.0, 0.8]).unwrap();
        assert!((direct - general).abs() < 1e-12);
    }

    #[test]
    fn general_forecast_validates_history_length() {
        assert!(garch_forecast(0.1, &[0.2, 0.1], &[], &[1.0], &[]).is_err());
        assert!(garch_forecast(0.1, &[], &[0.5], &[], &[]).is_err());
    }

    #[test]
    fn short_series_rejected() {
        assert!(matches!(
            fit_garch11(&[1.0; 5]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn constant_residuals_rejected() {
        assert!(matches!(
            fit_garch11(&[0.0; 100]),
            Err(StatsError::DegenerateInput(_))
        ));
    }

    #[test]
    fn homoskedastic_input_yields_low_persistence_arch_term() {
        // On iid residuals the ARCH coefficient should be small.
        let g = ArmaGarchGenerator {
            seed: 9,
            c: 0.0,
            phi: 0.0,
            theta: 0.0,
            alpha0: 1.0,
            alpha1: 0.0,
            beta1: 0.0,
        };
        let a = g.generate(4000).values().to_vec();
        let fit = fit_garch11(&a).unwrap();
        assert!(
            fit.alpha1 < 0.06,
            "spurious ARCH effect: α1 = {}",
            fit.alpha1
        );
    }
}
