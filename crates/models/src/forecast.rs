//! Multi-step-ahead forecasting (extension of the paper's one-step
//! machinery).
//!
//! The paper's pipeline only ever needs the one-step forecast `r̂_t`,
//! `σ̂²_t`; views over *future* horizons (e.g. "probability the temperature
//! exceeds 30 °C an hour from now") need the k-step extensions:
//!
//! * ARMA mean forecasts follow the recursion of eq. 2 with future
//!   innovations set to their zero mean;
//! * GARCH(1,1) variance forecasts converge geometrically to the
//!   unconditional variance:
//!   `σ²(k) = σ̄² + (α₁+β₁)^{k−1} (σ²(1) − σ̄²)`;
//! * the k-step density of an ARMA(+GARCH) process is Gaussian with the
//!   accumulated moving-average variance `Var = Σ_{j<k} ψ_j² σ²(k−j)`
//!   where `ψ_j` are the ψ-weights of the fitted ARMA model.

use crate::arma::ArmaFit;
use crate::garch::Garch11Fit;
use tspdb_stats::error::StatsError;

/// k-step mean forecasts from a fitted ARMA model and its window.
///
/// Returns `horizon` values `r̂_{t}, r̂_{t+1}, …`; `window` must be the same
/// window the model was fitted on (the recursion consumes its tail).
pub fn arma_forecast_path(
    fit: &ArmaFit,
    window: &[f64],
    horizon: usize,
) -> Result<Vec<f64>, StatsError> {
    if window.len() < fit.p.max(fit.q) {
        return Err(StatsError::InsufficientData {
            needed: fit.p.max(fit.q),
            got: window.len(),
        });
    }
    // Extended value/innovation buffers: observed history then forecasts.
    let mut values = window.to_vec();
    let mut innov = fit.residuals.clone();
    innov.resize(values.len(), 0.0);
    let mut out = Vec::with_capacity(horizon);
    for _ in 0..horizon {
        let n = values.len();
        let mut pred = fit.phi0;
        for (j, c) in fit.phi.iter().enumerate() {
            pred += c * values[n - 1 - j];
        }
        for (j, c) in fit.theta.iter().enumerate() {
            pred += c * innov[n - 1 - j];
        }
        out.push(pred);
        values.push(pred);
        innov.push(0.0); // future innovations have zero expectation
    }
    Ok(out)
}

/// ψ-weights (MA(∞) representation) of a fitted ARMA model, `ψ_0 .. ψ_{k−1}`.
///
/// `ψ_0 = 1`, `ψ_j = θ_j + Σ_{i=1..min(j,p)} φ_i ψ_{j−i}` (with `θ_j = 0`
/// beyond the MA order).
pub fn psi_weights(fit: &ArmaFit, k: usize) -> Vec<f64> {
    let mut psi = vec![0.0; k];
    if k == 0 {
        return psi;
    }
    psi[0] = 1.0;
    for j in 1..k {
        let mut w = if j <= fit.q { fit.theta[j - 1] } else { 0.0 };
        for i in 1..=fit.p.min(j) {
            w += fit.phi[i - 1] * psi[j - i];
        }
        psi[j] = w;
    }
    psi
}

/// k-step conditional variance path of a GARCH(1,1) model:
/// `σ²(1), σ²(2), …` given the last residual and conditional variance.
pub fn garch_variance_path(
    fit: &Garch11Fit,
    last_a: f64,
    last_sigma2: f64,
    horizon: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(horizon);
    let persistence = fit.persistence();
    let mut s2 = fit.forecast_next(last_a, last_sigma2);
    for _ in 0..horizon {
        out.push(s2);
        // Beyond one step the expected squared residual equals the
        // conditional variance: σ²(k+1) = α0 + (α1 + β1) σ²(k).
        s2 = fit.alpha0 + persistence * s2;
    }
    out
}

/// k-step forecast *density* variances of the ARMA+GARCH pair: entry `k`
/// is the variance of the (k+1)-step-ahead predictive distribution,
/// `Σ_{j=0..k} ψ_j² σ²(k+1−j)`.
pub fn forecast_density_variances(
    arma: &ArmaFit,
    garch: &Garch11Fit,
    last_a: f64,
    last_sigma2: f64,
    horizon: usize,
) -> Vec<f64> {
    let psi = psi_weights(arma, horizon);
    let sig = garch_variance_path(garch, last_a, last_sigma2, horizon);
    (0..horizon)
        .map(|k| (0..=k).map(|j| psi[j] * psi[j] * sig[k - j]).sum::<f64>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arma::fit_arma;
    use crate::garch::fit_garch11;
    use tspdb_timeseries::generate::{ar1_series, ArmaGarchGenerator};

    #[test]
    fn ar1_forecast_path_decays_to_mean() {
        // AR(1) with φ = 0.8: forecasts decay geometrically toward the
        // unconditional mean φ0 / (1 − φ).
        let s = ar1_series(11, 0.8, 1.0, 4000);
        let fit = fit_arma(s.values(), 1, 0).unwrap();
        let path = arma_forecast_path(&fit, s.values(), 50).unwrap();
        let mean = fit.phi0 / (1.0 - fit.phi[0]);
        // Deviations from the mean shrink by ≈ φ each step.
        let d0 = (path[0] - mean).abs();
        let d10 = (path[10] - mean).abs();
        assert!(
            d10 < d0 * 0.8f64.powi(9) * 2.0,
            "decay too slow: {d0} -> {d10}"
        );
        // Far horizon ≈ unconditional mean.
        assert!((path[49] - mean).abs() < 0.05 * (1.0 + mean.abs()));
    }

    #[test]
    fn one_step_path_matches_fit_forecast() {
        let s = ar1_series(3, 0.6, 1.0, 500);
        let fit = fit_arma(s.values(), 2, 0).unwrap();
        let path = arma_forecast_path(&fit, s.values(), 1).unwrap();
        assert!((path[0] - fit.forecast).abs() < 1e-12);
    }

    #[test]
    fn psi_weights_of_ar1_are_powers_of_phi() {
        let s = ar1_series(7, 0.7, 1.0, 3000);
        let fit = fit_arma(s.values(), 1, 0).unwrap();
        let psi = psi_weights(&fit, 6);
        assert!((psi[0] - 1.0).abs() < 1e-12);
        for j in 1..6 {
            assert!(
                (psi[j] - fit.phi[0].powi(j as i32)).abs() < 1e-9,
                "psi[{j}] = {}",
                psi[j]
            );
        }
    }

    #[test]
    fn garch_variance_converges_to_unconditional() {
        let a = ArmaGarchGenerator {
            c: 0.0,
            phi: 0.0,
            theta: 0.0,
            ..ArmaGarchGenerator::default()
        }
        .generate(4000)
        .values()
        .to_vec();
        let fit = fit_garch11(&a).unwrap();
        let path = garch_variance_path(&fit, 3.0, 2.0, 500);
        let unconditional = fit.unconditional_variance();
        // Starts elevated (large last shock), converges monotonically.
        assert!(path[0] > unconditional);
        assert!((path[499] - unconditional).abs() < 0.01 * unconditional);
        for w in path.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "variance path must decay here");
        }
    }

    #[test]
    fn density_variances_grow_with_horizon() {
        // Predictive variance accumulates ψ² terms, so it must be
        // non-decreasing in the horizon for an AR(1) with positive φ.
        let s = ar1_series(19, 0.7, 1.0, 3000);
        let arma = fit_arma(s.values(), 1, 0).unwrap();
        let garch = fit_garch11(arma.usable_residuals()).unwrap();
        let vars = forecast_density_variances(&arma, &garch, 0.5, 1.0, 20);
        for w in vars.windows(2) {
            assert!(w[1] >= w[0] * 0.999, "predictive variance shrank: {w:?}");
        }
        // Long-horizon variance approaches the process variance
        // σ̄²/(1−φ²) — within broad tolerance for estimated parameters.
        let theo = garch.unconditional_variance() / (1.0 - arma.phi[0] * arma.phi[0]);
        assert!(
            (vars[19] - theo).abs() / theo < 0.3,
            "{} vs {theo}",
            vars[19]
        );
    }

    #[test]
    fn zero_horizon_is_empty() {
        let s = ar1_series(5, 0.5, 1.0, 300);
        let fit = fit_arma(s.values(), 1, 0).unwrap();
        assert!(arma_forecast_path(&fit, s.values(), 0).unwrap().is_empty());
        assert!(psi_weights(&fit, 0).is_empty());
    }
}
