//! # tspdb-models
//!
//! Time-series model estimation substrate for the `tspdb` workspace — the
//! mathematical machinery behind the paper's dynamic density metrics:
//!
//! * [`arma`] — ARMA(p, q) fitting (Hannan–Rissanen) and the one-step
//!   expected-true-value forecast of eq. 2.
//! * [`garch`] — GARCH(1,1) quasi-MLE and the eq. 6 volatility forecast.
//! * [`kalman`] — scalar state-space filtering/smoothing with EM parameter
//!   estimation (eq. 7-8), deliberately iterative like the paper's.
//! * [`archtest`] — the ARCH-effect hypothesis test of Section VII-D
//!   (eq. 15-16) used to verify time-varying volatility (Fig. 15).
//! * [`order`] — AIC/BIC model-order selection (extension).
//!
//! ## Quick start
//!
//! ```
//! use tspdb_models::fit_arma;
//!
//! // An AR(1) series x_t = 0.6·x_{t−1} + ε_t with LCG pseudo-noise.
//! let mut state = 42u64;
//! let mut next = || {
//!     state = state
//!         .wrapping_mul(6364136223846793005)
//!         .wrapping_add(1442695040888963407);
//!     (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
//! };
//! let mut x = vec![0.0f64];
//! for i in 1..240 {
//!     let prev = x[i - 1];
//!     x.push(0.6 * prev + next());
//! }
//! let fit = fit_arma(&x, 1, 0).unwrap();
//! assert!((fit.phi[0] - 0.6).abs() < 0.2, "phi = {}", fit.phi[0]);
//! assert!(fit.sigma2_a > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately catches NaN alongside non-positive values
    // in numeric guards; `partial_cmp` obscures that intent.
    clippy::neg_cmp_op_on_partial_ord,
    // Index-based loops mirror the textbook formulations of the numeric
    // kernels (Cholesky, Levinson-Durbin, filters) they implement.
    clippy::needless_range_loop
)]

pub mod archtest;
pub mod arma;
pub mod forecast;
pub mod garch;
pub mod kalman;
pub mod order;

pub use archtest::{arch_effect_test, ArchTest};
pub use arma::{fit_arma, ArmaFit};
pub use garch::{fit_garch11, Garch11Fit};
pub use kalman::{fit_em, EmConfig, KalmanFit, KalmanParams};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn garch_fit_constraints_hold_on_arbitrary_input(
            seed in 0u64..50,
            scale in 0.1f64..10.0,
        ) {
            // Whatever the input, the fitted parameters stay admissible.
            let s = tspdb_timeseries::generate::ArmaGarchGenerator {
                seed,
                c: 0.0,
                phi: 0.0,
                theta: 0.0,
                alpha0: 0.05 * scale,
                alpha1: 0.1,
                beta1: 0.8,
            }
            .generate(120);
            if let Ok(fit) = crate::garch::fit_garch11(s.values()) {
                prop_assert!(fit.alpha0 > 0.0);
                prop_assert!(fit.alpha1 >= 0.0);
                prop_assert!(fit.beta1 >= 0.0);
                prop_assert!(fit.persistence() < 1.0);
                for s2 in &fit.sigma2 {
                    prop_assert!(*s2 > 0.0);
                }
            }
        }

        #[test]
        fn arma_forecast_is_finite_on_bounded_series(
            seed in 0u64..50,
            p in 1usize..4,
        ) {
            let s = tspdb_timeseries::generate::ar1_series(seed, 0.5, 1.0, 150);
            if let Ok(fit) = crate::arma::fit_arma(s.values(), p, 0) {
                prop_assert!(fit.forecast.is_finite());
                // A one-step forecast of a stationary bounded series stays
                // within a generous envelope of the observed range.
                let lo = s.values().iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = s.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let span = hi - lo;
                prop_assert!(fit.forecast > lo - span && fit.forecast < hi + span);
            }
        }
    }
}
