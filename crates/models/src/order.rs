//! Model-order selection for ARMA(p, q).
//!
//! The paper fixes low orders ("this justifies our choice of a low model
//! order", Fig. 12) and points at the standard literature for selection.
//! This module supplies the standard information-criterion machinery so
//! users can validate that choice on their own data: AIC/BIC scoring of a
//! candidate grid, as an extension of the paper's setup.

use crate::arma::{fit_arma, ArmaFit};
use tspdb_stats::error::StatsError;

/// Information criterion used for order scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Akaike: `n ln σ̂² + 2k`.
    Aic,
    /// Bayesian/Schwarz: `n ln σ̂² + k ln n`.
    Bic,
}

/// Score of one candidate order.
#[derive(Debug, Clone)]
pub struct OrderScore {
    /// AR order.
    pub p: usize,
    /// MA order.
    pub q: usize,
    /// Criterion value (lower is better).
    pub score: f64,
    /// Innovation variance of the fit.
    pub sigma2: f64,
}

/// Computes the chosen criterion for a fitted model over `n` observations.
pub fn criterion_value(fit: &ArmaFit, n: usize, criterion: Criterion) -> f64 {
    let k = (fit.p + fit.q + 1) as f64; // +1 for the constant
    let n_f = n as f64;
    let var_term = n_f * fit.sigma2_a.max(1e-300).ln();
    match criterion {
        Criterion::Aic => var_term + 2.0 * k,
        Criterion::Bic => var_term + k * n_f.ln(),
    }
}

/// Fits every `(p, q)` with `p ≤ max_p`, `q ≤ max_q` (excluding `(0,0)`)
/// and returns the scored candidates sorted best-first.
///
/// Candidates whose fit fails (window too short, degenerate data) are
/// silently skipped; an error is returned only if *no* candidate fits.
pub fn select_order(
    window: &[f64],
    max_p: usize,
    max_q: usize,
    criterion: Criterion,
) -> Result<Vec<OrderScore>, StatsError> {
    let mut scores = Vec::new();
    for p in 0..=max_p {
        for q in 0..=max_q {
            if p == 0 && q == 0 {
                continue;
            }
            if let Ok(fit) = fit_arma(window, p, q) {
                if fit.sigma2_a > 0.0 && fit.sigma2_a.is_finite() {
                    scores.push(OrderScore {
                        p,
                        q,
                        score: criterion_value(&fit, window.len(), criterion),
                        sigma2: fit.sigma2_a,
                    });
                }
            }
        }
    }
    if scores.is_empty() {
        return Err(StatsError::DegenerateInput(
            "no ARMA order could be fitted".into(),
        ));
    }
    scores.sort_by(|a, b| a.score.partial_cmp(&b.score).unwrap());
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_timeseries::generate::ar1_series;

    #[test]
    fn bic_prefers_parsimonious_models() {
        let s = ar1_series(8, 0.7, 1.0, 2000);
        let scores = select_order(s.values(), 4, 0, Criterion::Bic).unwrap();
        // AR(1) is the true model; BIC should rank it at or near the top
        // and definitely above AR(4).
        let rank = |p: usize| scores.iter().position(|o| o.p == p && o.q == 0).unwrap();
        assert!(
            rank(1) < rank(4),
            "BIC ranks AR(4) above AR(1): {:?}",
            scores.iter().map(|o| (o.p, o.score)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn best_candidate_comes_first() {
        let s = ar1_series(9, 0.5, 1.0, 500);
        let scores = select_order(s.values(), 3, 1, Criterion::Aic).unwrap();
        for w in scores.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
    }

    #[test]
    fn criterion_penalises_parameters() {
        let s = ar1_series(10, 0.6, 1.0, 300);
        let fit1 = fit_arma(s.values(), 1, 0).unwrap();
        let fit4 = fit_arma(s.values(), 4, 0).unwrap();
        // Same variance scale ⇒ the bigger model pays a larger penalty.
        let n = s.len();
        let a1 = criterion_value(&fit1, n, Criterion::Bic);
        let a4 = criterion_value(&fit4, n, Criterion::Bic);
        // σ² shrinks slightly for AR(4) but the penalty difference is
        // 3 · ln(300) ≈ 17; the net must favour AR(1) here.
        assert!(a1 < a4, "BIC(AR1) = {a1} vs BIC(AR4) = {a4}");
    }

    #[test]
    fn errors_when_nothing_fits() {
        assert!(select_order(&[1.0, 2.0], 3, 3, Criterion::Aic).is_err());
    }
}
