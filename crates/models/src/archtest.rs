//! ARCH-effect hypothesis test (paper Section VII-D).
//!
//! Before trusting a GARCH-family metric on a dataset, the paper verifies
//! that the data actually exhibits time-varying volatility: the squared
//! ARMA residuals `a²_i` are regressed on their own `m` lags (eq. 15)
//!
//! ```text
//! a²_i = ξ_0 + ξ_1 a²_{i−1} + … + ξ_m a²_{i−m} + e_i
//! ```
//!
//! and the statistic (eq. 16)
//!
//! ```text
//! Φ(m) = ((γ_0 − γ_1)/m) / (γ_1 / (K − 2m − 1))
//! ```
//!
//! is compared against the upper-α chi-square critical value `χ²_m(α)`;
//! `Φ(m) > χ²_m(α)` rejects "the residuals are i.i.d." and establishes
//! volatility regimes. Here `γ_0` is the total sum of squares of `a²`,
//! `γ_1` the residual sum of squares of the regression, and `K` the number
//! of squared-residual observations entering the test.

use tspdb_stats::error::StatsError;
use tspdb_stats::regression::{design_with_intercept, ols};
use tspdb_stats::special::{chi_square_quantile, chi_square_sf};

/// Result of one ARCH-effect test.
#[derive(Debug, Clone)]
pub struct ArchTest {
    /// The statistic `Φ(m)` of eq. 16.
    pub statistic: f64,
    /// Number of lags `m` (degrees of freedom of the reference χ²).
    pub m: usize,
    /// Significance level α used for the critical value.
    pub alpha: f64,
    /// Critical value `χ²_m(α)` (upper-α quantile).
    pub critical: f64,
    /// Asymptotic p-value `P(χ²_m > Φ(m))`.
    pub p_value: f64,
}

impl ArchTest {
    /// Whether the null hypothesis of i.i.d. errors is rejected — i.e.
    /// whether the series exhibits time-varying volatility.
    pub fn rejects_iid(&self) -> bool {
        self.statistic > self.critical
    }
}

/// Runs the ARCH-effect test on a residual series with `m` lags at
/// significance level `alpha`.
///
/// Requires enough residuals for the denominator degrees of freedom
/// `K − 2m − 1` to be positive.
pub fn arch_effect_test(residuals: &[f64], m: usize, alpha: f64) -> Result<ArchTest, StatsError> {
    assert!(m >= 1, "arch_effect_test: need at least one lag");
    assert!(
        (0.0..1.0).contains(&alpha) && alpha > 0.0,
        "arch_effect_test: alpha must be in (0,1)"
    );
    let k_total = residuals.len();
    // Need K − 2m − 1 > 0 with K the count of squared residuals, and at
    // least m + 2 regression rows.
    if k_total < 3 * m + 4 {
        return Err(StatsError::InsufficientData {
            needed: 3 * m + 4,
            got: k_total,
        });
    }
    let sq: Vec<f64> = residuals.iter().map(|a| a * a).collect();

    // Regression rows: i = m .. K−1.
    let y: Vec<f64> = sq[m..].to_vec();
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(m);
    for j in 1..=m {
        cols.push((m..k_total).map(|i| sq[i - j]).collect());
    }
    let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let design = design_with_intercept(&col_refs);
    let fit = ols(&design, &y)?;

    // γ0: total sum of squares of a² around its mean; γ1: RSS.
    let gamma0 = fit.tss;
    let gamma1 = fit.rss;
    if !(gamma1 > 0.0) {
        return Err(StatsError::DegenerateInput(
            "ARCH test: regression fits squared residuals exactly".into(),
        ));
    }
    let k = sq.len() as f64;
    let statistic = ((gamma0 - gamma1) / m as f64) / (gamma1 / (k - 2.0 * m as f64 - 1.0));
    let critical = chi_square_quantile(1.0 - alpha, m as f64);
    let p_value = chi_square_sf(statistic.max(0.0), m as f64);
    Ok(ArchTest {
        statistic: statistic.max(0.0),
        m,
        alpha,
        critical,
        p_value,
    })
}

/// Averages the `Φ(m)` statistic over every sliding window of length `h`
/// (stepping by `step` indices) — the aggregation the paper uses for
/// Fig. 15 ("we compute the value of Φ(m) … on 1800 windows containing 180
/// samples each … we reject the null hypothesis if the *average* value of
/// Φ(m) over all windows is greater than χ²_m(α)").
///
/// Windows where the test fails (degenerate regression) are skipped.
/// Returns the mean statistic and the number of windows that contributed.
pub fn mean_statistic_over_windows(
    residuals: &[f64],
    h: usize,
    step: usize,
    m: usize,
    alpha: f64,
) -> Result<(f64, usize), StatsError> {
    if residuals.len() < h {
        return Err(StatsError::InsufficientData {
            needed: h,
            got: residuals.len(),
        });
    }
    assert!(step >= 1, "mean_statistic_over_windows: step must be ≥ 1");
    let mut acc = 0.0;
    let mut count = 0usize;
    let mut start = 0;
    while start + h <= residuals.len() {
        if let Ok(t) = arch_effect_test(&residuals[start..start + h], m, alpha) {
            acc += t.statistic;
            count += 1;
        }
        start += step;
    }
    if count == 0 {
        return Err(StatsError::DegenerateInput(
            "ARCH test failed on every window".into(),
        ));
    }
    Ok((acc / count as f64, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_timeseries::generate::{ar1_series, ArmaGarchGenerator};

    fn garch_innovations(n: usize, seed: u64) -> Vec<f64> {
        ArmaGarchGenerator {
            seed,
            c: 0.0,
            phi: 0.0,
            theta: 0.0,
            alpha0: 0.05,
            alpha1: 0.3,
            beta1: 0.6,
        }
        .generate(n)
        .values()
        .to_vec()
    }

    #[test]
    fn rejects_on_garch_innovations() {
        let a = garch_innovations(4000, 21);
        for m in 1..=4 {
            let t = arch_effect_test(&a, m, 0.05).unwrap();
            assert!(
                t.rejects_iid(),
                "m = {m}: Φ = {} ≤ critical {}",
                t.statistic,
                t.critical
            );
            assert!(t.p_value < 0.05);
        }
    }

    #[test]
    fn accepts_on_iid_noise() {
        // Homoskedastic innovations: Φ should land below the critical value.
        let a = ArmaGarchGenerator {
            seed: 5,
            c: 0.0,
            phi: 0.0,
            theta: 0.0,
            alpha0: 1.0,
            alpha1: 0.0,
            beta1: 0.0,
        }
        .generate(4000)
        .values()
        .to_vec();
        let t = arch_effect_test(&a, 3, 0.05).unwrap();
        assert!(
            !t.rejects_iid(),
            "false rejection: Φ = {} > {}",
            t.statistic,
            t.critical
        );
    }

    #[test]
    fn critical_values_match_chi_square_tables() {
        let a = garch_innovations(500, 2);
        let t1 = arch_effect_test(&a, 1, 0.05).unwrap();
        assert!((t1.critical - 3.841).abs() < 0.01);
        let t8 = arch_effect_test(&a, 8, 0.05).unwrap();
        assert!((t8.critical - 15.507).abs() < 0.01);
    }

    #[test]
    fn ar1_levels_are_not_arch() {
        // Raw AR(1) *residuals* (after removing the AR structure) are iid.
        let s = ar1_series(77, 0.8, 1.0, 5000);
        let resid: Vec<f64> = s.values().windows(2).map(|w| w[1] - 0.8 * w[0]).collect();
        let t = arch_effect_test(&resid, 2, 0.05).unwrap();
        assert!(!t.rejects_iid(), "Φ = {} vs {}", t.statistic, t.critical);
    }

    #[test]
    fn windowed_mean_statistic_separates_regimes() {
        let garch = garch_innovations(6000, 9);
        let (phi_garch, n1) = mean_statistic_over_windows(&garch, 180, 10, 2, 0.05).unwrap();
        let iid = ar1_series(13, 0.0, 1.0, 6000).values().to_vec();
        let (phi_iid, n2) = mean_statistic_over_windows(&iid, 180, 10, 2, 0.05).unwrap();
        assert!(n1 > 500 && n2 > 500);
        assert!(
            phi_garch > phi_iid * 1.5,
            "windowed Φ does not separate: garch {phi_garch} vs iid {phi_iid}"
        );
    }

    #[test]
    fn insufficient_data_is_rejected() {
        assert!(matches!(
            arch_effect_test(&[1.0; 6], 2, 0.05),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn statistic_is_never_negative() {
        let a = ar1_series(3, 0.0, 1.0, 200).values().to_vec();
        let t = arch_effect_test(&a, 4, 0.05).unwrap();
        assert!(t.statistic >= 0.0);
    }
}
