//! ARMA(p, q) estimation and one-step forecasting.
//!
//! The paper infers the expected true value `r̂_t` (eq. 2) with an ARMA
//! model fitted over the sliding window `S^H_{t-1}`:
//!
//! ```text
//! r̂_t = φ_0 + Σ_{j=1..p} φ_j r_{t−j} + Σ_{j=1..q} θ_j a_{t−j}
//! ```
//!
//! Estimation uses the Hannan–Rissanen two-stage procedure: a long
//! autoregression provides innovation estimates, after which the ARMA
//! coefficients are a single least-squares fit on lagged values and lagged
//! innovations. This keeps the per-window cost at `O(H · max(p,q))` — the
//! complexity the paper quotes for Algorithm 1 — instead of the iterative
//! likelihood optimisation a full MLE would need.

use tspdb_stats::error::StatsError;
use tspdb_stats::regression::{design_with_intercept, ols};

/// A fitted ARMA(p, q) model over one window, ready to produce the one-step
/// forecast `r̂_t` and the in-sample innovations `a_i` that feed GARCH.
#[derive(Debug, Clone)]
pub struct ArmaFit {
    /// Autoregressive order.
    pub p: usize,
    /// Moving-average order.
    pub q: usize,
    /// Constant term `φ_0`.
    pub phi0: f64,
    /// AR coefficients `φ_1 .. φ_p`.
    pub phi: Vec<f64>,
    /// MA coefficients `θ_1 .. θ_q`.
    pub theta: Vec<f64>,
    /// In-sample innovations `a_i`, aligned with the window (`a_i = 0` for
    /// the first `max(p, q)` warm-up positions).
    pub residuals: Vec<f64>,
    /// Innovation variance estimate `σ²_a` from the usable residuals.
    pub sigma2_a: f64,
    /// One-step-ahead forecast `r̂_t` for the value following the window.
    pub forecast: f64,
}

impl ArmaFit {
    /// Number of leading window positions without a defined innovation.
    pub fn warmup(&self) -> usize {
        self.p.max(self.q)
    }

    /// The innovations after the warm-up region — the `a_i` sequence handed
    /// to the GARCH stage (paper Algorithm 1, step 1).
    pub fn usable_residuals(&self) -> &[f64] {
        &self.residuals[self.warmup()..]
    }
}

/// Minimum window length required to fit ARMA(p, q): enough rows for the
/// regression plus the long-AR warm-up.
pub fn min_window(p: usize, q: usize) -> usize {
    let k = long_ar_order(p, q);
    // Need at least (p + q + 1) free parameters' worth of rows after losing
    // `k + q` observations to lags, with a small safety margin.
    k + q + (p + q + 1) * 2 + 4
}

/// Long autoregression order for the Hannan–Rissanen first stage.
fn long_ar_order(p: usize, q: usize) -> usize {
    (p.max(q) + 4).max(6)
}

/// Fits ARMA(p, q) on a window by Hannan–Rissanen.
///
/// * `p == 0 && q == 0` degenerates to the sample-mean model (`r̂ = mean`).
/// * `q == 0` is a direct autoregression (single OLS).
///
/// Errors with [`StatsError::InsufficientData`] when the window is shorter
/// than [`min_window`], and with [`StatsError::DegenerateInput`] when the
/// window is (numerically) constant.
pub fn fit_arma(window: &[f64], p: usize, q: usize) -> Result<ArmaFit, StatsError> {
    let n = window.len();
    if p == 0 && q == 0 {
        if n < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: n });
        }
        let mean = tspdb_stats::descriptive::mean(window);
        let residuals: Vec<f64> = window.iter().map(|r| r - mean).collect();
        let sigma2 = tspdb_stats::descriptive::sample_variance(&residuals).max(0.0);
        return Ok(ArmaFit {
            p,
            q,
            phi0: mean,
            phi: Vec::new(),
            theta: Vec::new(),
            residuals,
            sigma2_a: sigma2,
            forecast: mean,
        });
    }
    let needed = min_window(p, q);
    if n < needed {
        return Err(StatsError::InsufficientData { needed, got: n });
    }

    // Stage 1 (only needed when q > 0): long AR to estimate innovations.
    let innovations_est: Vec<f64> = if q > 0 {
        let k = long_ar_order(p, q);
        let ar = fit_autoregression(window, k)?;
        // Innovations defined for i >= k; zero-pad the warm-up.
        let mut a = vec![0.0; n];
        for i in k..n {
            let mut pred = ar.0;
            for (j, c) in ar.1.iter().enumerate() {
                pred += c * window[i - 1 - j];
            }
            a[i] = window[i] - pred;
        }
        a
    } else {
        Vec::new()
    };

    // Stage 2: regress r_i on intercept, its own lags, and lagged
    // innovation estimates. Rows start where all lags are defined.
    let start = if q > 0 { long_ar_order(p, q) + q } else { p };
    let rows = n - start;
    let y: Vec<f64> = window[start..].to_vec();
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(p + q);
    for j in 1..=p {
        cols.push((start..n).map(|i| window[i - j]).collect());
    }
    for j in 1..=q {
        cols.push((start..n).map(|i| innovations_est[i - j]).collect());
    }
    let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let design = design_with_intercept(&col_refs);
    if rows <= p + q + 1 {
        return Err(StatsError::InsufficientData {
            needed: p + q + 2,
            got: rows,
        });
    }
    let fit = ols(&design, &y)?;

    let phi0 = fit.beta[0];
    let phi: Vec<f64> = fit.beta[1..1 + p].to_vec();
    let theta: Vec<f64> = fit.beta[1 + p..1 + p + q].to_vec();

    // Recursive in-sample innovations under the fitted model, defined from
    // max(p, q) onward with zero initial innovations.
    let warm = p.max(q);
    let mut residuals = vec![0.0; n];
    for i in warm..n {
        let mut pred = phi0;
        for (j, c) in phi.iter().enumerate() {
            pred += c * window[i - 1 - j];
        }
        for (j, c) in theta.iter().enumerate() {
            pred += c * residuals[i - 1 - j];
        }
        residuals[i] = window[i] - pred;
    }
    let usable = &residuals[warm..];
    let sigma2_a = tspdb_stats::descriptive::sample_variance(usable).max(0.0);

    // One-step forecast for index n (the paper's r̂_t with t = window end).
    let mut forecast = phi0;
    for (j, c) in phi.iter().enumerate() {
        forecast += c * window[n - 1 - j];
    }
    for (j, c) in theta.iter().enumerate() {
        forecast += c * residuals[n - 1 - j];
    }
    if !forecast.is_finite() {
        return Err(StatsError::DegenerateInput(
            "ARMA forecast is non-finite".into(),
        ));
    }

    Ok(ArmaFit {
        p,
        q,
        phi0,
        phi,
        theta,
        residuals,
        sigma2_a,
        forecast,
    })
}

/// Direct OLS autoregression of order `k` (intercept + k lags); returns
/// `(intercept, coefficients)`.
fn fit_autoregression(window: &[f64], k: usize) -> Result<(f64, Vec<f64>), StatsError> {
    let n = window.len();
    if n < k + k + 2 {
        return Err(StatsError::InsufficientData {
            needed: 2 * k + 2,
            got: n,
        });
    }
    let y: Vec<f64> = window[k..].to_vec();
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(k);
    for j in 1..=k {
        cols.push((k..n).map(|i| window[i - j]).collect());
    }
    let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let design = design_with_intercept(&col_refs);
    let fit = ols(&design, &y)?;
    Ok((fit.beta[0], fit.beta[1..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_timeseries::generate::{ar1_series, ArmaGarchGenerator};

    #[test]
    fn mean_model_for_zero_orders() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let fit = fit_arma(&w, 0, 0).unwrap();
        assert!((fit.forecast - 2.5).abs() < 1e-12);
        assert_eq!(fit.residuals.len(), 4);
        assert!((fit.residuals[0] + 1.5).abs() < 1e-12);
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let s = ar1_series(3, 0.7, 1.0, 3000);
        let fit = fit_arma(s.values(), 1, 0).unwrap();
        assert!(
            (fit.phi[0] - 0.7).abs() < 0.05,
            "AR coefficient {} ≉ 0.7",
            fit.phi[0]
        );
        assert!(fit.phi0.abs() < 0.1, "intercept {}", fit.phi0);
        assert!((fit.sigma2_a - 1.0).abs() < 0.1, "σ²_a {}", fit.sigma2_a);
    }

    #[test]
    fn recovers_arma11_coefficients() {
        // Homoskedastic ARMA(1,1): GARCH degenerate (α1 = β1 = 0).
        let g = ArmaGarchGenerator {
            seed: 11,
            c: 1.0,
            phi: 0.6,
            theta: 0.4,
            alpha0: 1.0,
            alpha1: 0.0,
            beta1: 0.0,
        };
        let s = g.generate(5000);
        let fit = fit_arma(s.values(), 1, 1).unwrap();
        assert!((fit.phi[0] - 0.6).abs() < 0.08, "φ {}", fit.phi[0]);
        assert!((fit.theta[0] - 0.4).abs() < 0.10, "θ {}", fit.theta[0]);
    }

    #[test]
    fn forecast_tracks_deterministic_trend() {
        // A noiseless AR(1)-with-drift sequence should be forecast almost
        // exactly.
        let mut w = vec![0.0f64; 60];
        for i in 1..60 {
            w[i] = 2.0 + 0.9 * w[i - 1];
        }
        let fit = fit_arma(&w, 1, 0).unwrap();
        let expected = 2.0 + 0.9 * w[59];
        assert!(
            (fit.forecast - expected).abs() < 1e-6,
            "forecast {} vs {expected}",
            fit.forecast
        );
    }

    #[test]
    fn residuals_have_near_zero_mean() {
        let s = ar1_series(17, 0.5, 2.0, 800);
        let fit = fit_arma(s.values(), 2, 0).unwrap();
        let m = tspdb_stats::descriptive::mean(fit.usable_residuals());
        assert!(m.abs() < 0.05, "residual mean {m}");
    }

    #[test]
    fn insufficient_window_is_rejected() {
        let w = [1.0, 2.0, 3.0];
        assert!(matches!(
            fit_arma(&w, 2, 1),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn constant_window_degrades_gracefully() {
        // Collinear design → ridge fallback; forecast should equal the
        // constant value.
        let w = vec![5.0; 80];
        let fit = fit_arma(&w, 1, 0).unwrap();
        assert!(
            (fit.forecast - 5.0).abs() < 1e-3,
            "forecast {}",
            fit.forecast
        );
    }

    #[test]
    fn warmup_positions_are_zeroed() {
        let s = ar1_series(23, 0.4, 1.0, 200);
        let fit = fit_arma(s.values(), 3, 2).unwrap();
        assert_eq!(fit.warmup(), 3);
        assert_eq!(&fit.residuals[..3], &[0.0, 0.0, 0.0]);
        assert_eq!(fit.usable_residuals().len(), 197);
    }

    #[test]
    fn higher_order_fits_do_not_explode() {
        let s = ar1_series(31, 0.6, 1.0, 400);
        for p in [2, 4, 6, 8] {
            let fit = fit_arma(s.values(), p, 0).unwrap();
            assert!(fit.forecast.is_finite());
            assert!(fit.sigma2_a.is_finite() && fit.sigma2_a > 0.0);
        }
    }
}
