//! # tspdb-ingest
//!
//! Streaming ingestion for the `tspdb` workspace: the paper's Ω-views are
//! built *from* time-series streams, so the write path has to keep up with
//! one. This crate makes the append path batch-friendly end to end:
//!
//! * [`Appender`] — accumulates rows per relation and lands each flush
//!   through [`SharedEngine::append_batches`], the **group-commit** write
//!   path: every flush is journaled with a single WAL fsync no matter how
//!   many rows or relations it spans, and applied under one write lock.
//!   Flushes trigger by size ([`AppenderConfig::max_rows`]) or age
//!   ([`AppenderConfig::max_delay`], checked by [`Appender::tick`]).
//! * [`TailRegistry`] — the standing-query surface behind
//!   `TAIL SELECT … GROUP BY WINDOW(…)`. Each subscription re-runs its
//!   windowed aggregate against an immutable relation snapshot whenever
//!   the engine's generations move, and emits one [`TailFrame`] per
//!   **closed** window bucket — a bucket closes when a later bucket has
//!   tuples, the watermark rule for monotone time-series streams. Frames
//!   are *by construction* byte-identical to re-running the equivalent
//!   windowed `SELECT` at emission time and filtering to the closed
//!   bucket: that is literally how they are produced.
//!
//! Everything downstream of the append — incremental Ω-view maintenance,
//! delta-merged synopses, MVCC snapshots for readers — lives in
//! `tspdb-core`; this crate is the batching and subscription layer the
//! wire server mounts on top.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tspdb_core::{CoreError, SharedEngine};
use tspdb_probdb::{parse, AggregateResult, QueryOutput, SelectStmt, Statement, Value};

/// Flush policy for an [`Appender`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppenderConfig {
    /// Flush as soon as this many rows are buffered (across all
    /// relations). The default of 64 matches the group-commit batch the
    /// ingest bench pins its ≥10× fsync amortization claim at.
    pub max_rows: usize,
    /// Flush when the oldest buffered row has waited this long — the
    /// latency bound. Age is checked by [`Appender::tick`] (the appender
    /// spawns no threads of its own).
    pub max_delay: Duration,
}

impl Default for AppenderConfig {
    fn default() -> Self {
        AppenderConfig {
            max_rows: 64,
            max_delay: Duration::from_millis(50),
        }
    }
}

/// Lifetime counters for one appender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppenderStats {
    /// Flushes issued (each one is one group commit).
    pub flushes: u64,
    /// Rows appended across all flushes.
    pub rows: u64,
}

/// Batches rows per relation and lands them through the engine's
/// group-commit append path.
///
/// Rows buffer in arrival order per relation; a flush submits every
/// buffered batch in one [`SharedEngine::append_batches`] call — one WAL
/// fsync, one write-lock acquisition, incremental view maintenance
/// included. Dropping the appender flushes best-effort.
#[derive(Debug)]
pub struct Appender {
    engine: SharedEngine,
    config: AppenderConfig,
    /// Buffered rows per relation, in arrival order.
    pending: Vec<(String, Vec<Vec<Value>>)>,
    pending_rows: usize,
    /// When the oldest buffered row arrived.
    oldest: Option<Instant>,
    stats: AppenderStats,
}

impl Appender {
    /// Creates an appender over `engine` with the given flush policy.
    pub fn new(engine: SharedEngine, config: AppenderConfig) -> Self {
        Appender {
            engine,
            config,
            pending: Vec::new(),
            pending_rows: 0,
            oldest: None,
            stats: AppenderStats::default(),
        }
    }

    /// Buffers one row for `table`, flushing if the size bound is hit.
    /// Returns the number of rows flushed (0 when the row only buffered).
    pub fn append(&mut self, table: &str, row: Vec<Value>) -> Result<usize, CoreError> {
        match self.pending.last_mut() {
            Some((t, rows)) if t == table => rows.push(row),
            _ => self.pending.push((table.to_string(), vec![row])),
        }
        self.pending_rows += 1;
        self.oldest.get_or_insert_with(Instant::now);
        if self.pending_rows >= self.config.max_rows {
            self.flush()
        } else {
            Ok(0)
        }
    }

    /// Rows currently buffered and not yet durable.
    pub fn pending_rows(&self) -> usize {
        self.pending_rows
    }

    /// Whether the age bound has expired on buffered rows.
    pub fn flush_due(&self) -> bool {
        self.oldest
            .is_some_and(|t| t.elapsed() >= self.config.max_delay)
    }

    /// Flushes if (and only if) the age bound has expired — the call a
    /// caller's timer loop makes. Returns the number of rows flushed.
    pub fn tick(&mut self) -> Result<usize, CoreError> {
        if self.flush_due() {
            self.flush()
        } else {
            Ok(0)
        }
    }

    /// Lands every buffered batch in one group commit. Returns the number
    /// of rows flushed. On error the buffer is still drained: the engine
    /// skips the failing batch and applies the rest, exactly as WAL replay
    /// would, so retrying a deterministically-bad batch cannot succeed.
    pub fn flush(&mut self) -> Result<usize, CoreError> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let batches = std::mem::take(&mut self.pending);
        let rows = std::mem::take(&mut self.pending_rows);
        self.oldest = None;
        self.stats.flushes += 1;
        self.stats.rows += rows as u64;
        self.engine.append_batches(batches)?;
        Ok(rows)
    }

    /// Lifetime flush/row counters.
    pub fn stats(&self) -> AppenderStats {
        self.stats
    }
}

impl Drop for Appender {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Handle identifying one TAIL subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TailToken(pub u64);

/// One result frame of a standing windowed query: the closed bucket's
/// groups, in the exact shape the equivalent one-shot `SELECT` returns
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct TailFrame {
    /// The subscription that produced the frame.
    pub token: TailToken,
    /// Start of the window bucket that closed (the bucket key the frame's
    /// groups all carry).
    pub bucket: f64,
    /// The aggregate rows of that bucket — a filtered
    /// [`AggregateResult`], fingerprint-compatible with the one-shot
    /// query's.
    pub result: AggregateResult,
}

/// What one poll produced for one subscription.
#[derive(Debug, Clone, PartialEq)]
pub enum TailEvent {
    /// A window bucket closed: here is its frame.
    Frame(TailFrame),
    /// The standing query stopped working (source dropped, schema
    /// changed); the subscription has been removed.
    Lapsed {
        /// The removed subscription.
        token: TailToken,
        /// The error that ended it.
        error: String,
    },
}

#[derive(Debug)]
struct TailSubscription {
    sel: SelectStmt,
    /// Start of the last bucket emitted; buckets at or below never
    /// re-emit.
    watermark: Option<f64>,
    /// Engine (DDL, data) generations at the last evaluation — the cheap
    /// "anything new?" check.
    seen: Option<(u64, u64)>,
}

/// The registry of standing `TAIL` queries.
///
/// Interior-mutable so the wire server can share one instance across its
/// event loop and workers. [`TailRegistry::poll`] drives every
/// subscription: it is cheap when nothing changed (two generation loads
/// per subscription) and emits frames for every newly closed bucket
/// otherwise.
#[derive(Debug, Default)]
pub struct TailRegistry {
    subs: Mutex<BTreeMap<u64, TailSubscription>>,
    next: Mutex<u64>,
}

impl TailRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TailRegistry::default()
    }

    /// Registers a standing query from `TAIL SELECT …` source text.
    pub fn subscribe_sql(&self, sql: &str) -> Result<TailToken, CoreError> {
        match parse(sql).map_err(CoreError::from)? {
            Statement::Tail(sel) => self.subscribe(sel),
            _ => Err(CoreError::InvalidConfig(
                "expected a TAIL SELECT … GROUP BY WINDOW(…) statement".into(),
            )),
        }
    }

    /// Registers an already-parsed windowed `SELECT` as a standing query.
    /// Subscribing replays history: every already-closed bucket emits on
    /// the first poll, so a late subscriber sees the same frame sequence
    /// an early one did.
    pub fn subscribe(&self, sel: SelectStmt) -> Result<TailToken, CoreError> {
        if sel.window.is_none() {
            return Err(CoreError::InvalidConfig(
                "TAIL requires GROUP BY WINDOW(column, width)".into(),
            ));
        }
        let mut next = self.next.lock().unwrap_or_else(|e| e.into_inner());
        *next += 1;
        let token = TailToken(*next);
        self.subs.lock().unwrap_or_else(|e| e.into_inner()).insert(
            token.0,
            TailSubscription {
                sel,
                watermark: None,
                seen: None,
            },
        );
        Ok(token)
    }

    /// Removes a subscription. Returns whether it existed.
    pub fn unsubscribe(&self, token: TailToken) -> bool {
        self.subs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&token.0)
            .is_some()
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.subs.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no subscriptions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drives every subscription against the engine's current state and
    /// returns the frames of every window bucket that closed since the
    /// last poll (plus a [`TailEvent::Lapsed`] for any standing query
    /// that stopped executing).
    ///
    /// A bucket **closes** when a later bucket holds at least one tuple —
    /// the watermark rule: on a time-monotone stream, once values for a
    /// later window arrive, the earlier window can never grow again. The
    /// frame is produced by re-running the subscription's full windowed
    /// query against an MVCC snapshot and filtering its groups to the
    /// closed bucket, so it is byte-identical to what the equivalent
    /// one-shot query answers at that moment.
    pub fn poll(&self, engine: &SharedEngine) -> Vec<TailEvent> {
        let mut events = Vec::new();
        let generations = (engine.catalog_generation(), engine.data_generation());
        let mut subs = self.subs.lock().unwrap_or_else(|e| e.into_inner());
        let mut lapsed = Vec::new();
        for (&id, sub) in subs.iter_mut() {
            if sub.seen == Some(generations) {
                continue; // nothing changed since the last evaluation
            }
            let agg = match engine.query_select_snapshot(&sub.sel) {
                Ok(QueryOutput::Aggregate(agg)) => agg,
                Ok(other) => {
                    lapsed.push((id, format!("standing query stopped aggregating: {other:?}")));
                    continue;
                }
                Err(e) => {
                    lapsed.push((id, e.to_string()));
                    continue;
                }
            };
            sub.seen = Some(generations);
            events.extend(
                closed_frames(TailToken(id), &agg, &mut sub.watermark)
                    .into_iter()
                    .map(TailEvent::Frame),
            );
        }
        for (id, error) in lapsed {
            subs.remove(&id);
            events.push(TailEvent::Lapsed {
                token: TailToken(id),
                error,
            });
        }
        events
    }
}

/// Splits one windowed aggregate into frames for every bucket that is
/// closed (a later bucket exists) and newer than the watermark, advancing
/// the watermark past what was emitted.
fn closed_frames(
    token: TailToken,
    agg: &AggregateResult,
    watermark: &mut Option<f64>,
) -> Vec<TailFrame> {
    // Distinct bucket starts in result order (windowed groups come back
    // sorted by bucket, so this is ascending).
    let mut buckets: Vec<f64> = Vec::new();
    for g in &agg.groups {
        let Some(start) = g.key.first().and_then(Value::as_f64) else {
            continue;
        };
        if buckets.last().map(|b| b.to_bits()) != Some(start.to_bits()) {
            buckets.push(start);
        }
    }
    let Some((&open, closed)) = buckets.split_last() else {
        return Vec::new();
    };
    let _ = open; // the newest bucket stays open until a later one appears
    let mut frames = Vec::new();
    for &bucket in closed {
        if watermark.is_some_and(|w| bucket <= w) {
            continue;
        }
        let groups = agg
            .groups
            .iter()
            .filter(|g| {
                g.key
                    .first()
                    .and_then(Value::as_f64)
                    .is_some_and(|s| s.to_bits() == bucket.to_bits())
            })
            .cloned()
            .collect();
        frames.push(TailFrame {
            token,
            bucket,
            result: AggregateResult {
                group_columns: agg.group_columns.clone(),
                aggregates: agg.aggregates.clone(),
                having: agg.having.clone(),
                strategy: agg.strategy,
                groups,
            },
        });
        *watermark = Some(bucket);
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_probdb::Value;

    fn engine_with_kv() -> SharedEngine {
        let engine = SharedEngine::default();
        engine.execute("CREATE TABLE kv (t INT, v FLOAT)").unwrap();
        engine
    }

    fn rows(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
        range
            .map(|t| vec![Value::Int(t), Value::Float(t as f64 * 0.5)])
            .collect()
    }

    #[test]
    fn appender_flushes_by_size_and_on_drop() {
        let engine = engine_with_kv();
        let mut appender = Appender::new(
            engine.clone(),
            AppenderConfig {
                max_rows: 4,
                ..AppenderConfig::default()
            },
        );
        let mut flushed = 0;
        for row in rows(0..10) {
            flushed += appender.append("kv", row).unwrap();
        }
        // 10 rows at max_rows=4: two size-triggered flushes, two buffered.
        assert_eq!(flushed, 8);
        assert_eq!(appender.pending_rows(), 2);
        assert_eq!(
            engine
                .query("SELECT * FROM kv")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            8
        );
        drop(appender);
        assert_eq!(
            engine
                .query("SELECT * FROM kv")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn appender_tick_flushes_only_after_the_age_bound() {
        let engine = engine_with_kv();
        let mut appender = Appender::new(
            engine.clone(),
            AppenderConfig {
                max_rows: 1_000,
                max_delay: Duration::from_millis(5),
            },
        );
        appender.append("kv", rows(0..1).remove(0)).unwrap();
        assert_eq!(appender.tick().unwrap(), 0, "age bound not reached yet");
        std::thread::sleep(Duration::from_millis(10));
        assert!(appender.flush_due());
        assert_eq!(appender.tick().unwrap(), 1);
        let stats = appender.stats();
        assert_eq!((stats.flushes, stats.rows), (1, 1));
    }

    #[test]
    fn appender_interleaves_relations_in_one_flush() {
        let engine = engine_with_kv();
        engine
            .execute("CREATE TABLE other (t INT, v FLOAT)")
            .unwrap();
        let mut appender = Appender::new(engine.clone(), AppenderConfig::default());
        for (i, row) in rows(0..6).into_iter().enumerate() {
            let table = if i % 2 == 0 { "kv" } else { "other" };
            appender.append(table, row).unwrap();
        }
        assert_eq!(appender.flush().unwrap(), 6);
        assert_eq!(
            engine
                .query("SELECT * FROM kv")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            3
        );
        assert_eq!(
            engine
                .query("SELECT * FROM other")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn tail_emits_each_bucket_once_when_it_closes() {
        let engine = engine_with_kv();
        let registry = TailRegistry::new();
        let token = registry
            .subscribe_sql("TAIL SELECT COUNT(*) FROM kv GROUP BY WINDOW(t, 10)")
            .unwrap();

        engine.append_rows("kv", rows(0..5)).unwrap();
        // One bucket only: it is still open, nothing emits.
        assert_eq!(registry.poll(&engine), vec![]);
        // Tuples for bucket [10, 20) close bucket [0, 10).
        engine.append_rows("kv", rows(10..12)).unwrap();
        let events = registry.poll(&engine);
        let [TailEvent::Frame(frame)] = events.as_slice() else {
            panic!("expected exactly one frame, got {events:?}");
        };
        assert_eq!(frame.token, token);
        assert_eq!(frame.bucket, 0.0);
        // Byte-identity with the one-shot query at emission time: same
        // fingerprint as re-running the windowed SELECT and filtering.
        let oneshot = engine
            .query("SELECT COUNT(*) FROM kv GROUP BY WINDOW(t, 10)")
            .unwrap();
        let oneshot = oneshot.aggregate().unwrap();
        let expected = AggregateResult {
            groups: oneshot
                .groups
                .iter()
                .filter(|g| g.key[0] == Value::Float(0.0))
                .cloned()
                .collect(),
            group_columns: oneshot.group_columns.clone(),
            aggregates: oneshot.aggregates.clone(),
            having: oneshot.having.clone(),
            strategy: oneshot.strategy,
        };
        assert_eq!(frame.result.fingerprint(), expected.fingerprint());
        // Idle poll: nothing new, nothing emits (and nothing re-emits).
        assert_eq!(registry.poll(&engine), vec![]);
        // A bucket two windows later closes [10, 20) — exactly once.
        engine.append_rows("kv", rows(25..26)).unwrap();
        let events = registry.poll(&engine);
        let [TailEvent::Frame(frame)] = events.as_slice() else {
            panic!("expected exactly one frame, got {events:?}");
        };
        assert_eq!(frame.bucket, 10.0);
        assert!(registry.unsubscribe(token));
        engine.append_rows("kv", rows(40..41)).unwrap();
        assert_eq!(registry.poll(&engine), vec![]);
    }

    #[test]
    fn tail_replays_already_closed_history_to_late_subscribers() {
        let engine = engine_with_kv();
        engine.append_rows("kv", rows(0..35)).unwrap();
        let registry = TailRegistry::new();
        registry
            .subscribe_sql("TAIL SELECT COUNT(*), SUM(v) FROM kv GROUP BY WINDOW(t, 10)")
            .unwrap();
        let events = registry.poll(&engine);
        let buckets: Vec<f64> = events
            .iter()
            .map(|e| match e {
                TailEvent::Frame(f) => f.bucket,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // Buckets [0,10), [10,20), [20,30) closed; [30,40) still open.
        assert_eq!(buckets, vec![0.0, 10.0, 20.0]);
    }

    #[test]
    fn tail_rejects_windowless_queries_and_lapses_on_drop() {
        let registry = TailRegistry::new();
        assert!(registry
            .subscribe_sql("TAIL SELECT COUNT(*) FROM kv")
            .is_err());
        let err = registry
            .subscribe_sql("SELECT COUNT(*) FROM kv")
            .unwrap_err();
        assert!(format!("{err}").contains("TAIL"), "{err}");

        let engine = engine_with_kv();
        engine.append_rows("kv", rows(0..15)).unwrap();
        let token = registry
            .subscribe_sql("TAIL SELECT COUNT(*) FROM kv GROUP BY WINDOW(t, 10)")
            .unwrap();
        engine.execute("DROP TABLE kv").unwrap();
        let events = registry.poll(&engine);
        let [TailEvent::Lapsed { token: t, .. }] = events.as_slice() else {
            panic!("expected a lapse, got {events:?}");
        };
        assert_eq!(*t, token);
        assert!(registry.is_empty());
    }
}
