//! Multi-step forecast views (extension).
//!
//! The paper's views cover observed timestamps; a natural extension the
//! framework supports directly is a *forecast view*: densities for the next
//! `k` unobserved steps, from the same fitted ARMA + GARCH pair Algorithm 1
//! estimates. The k-step mean follows the ARMA recursion with zero future
//! innovations, and the k-step predictive variance accumulates the ψ-weight
//! expansion over the GARCH variance path (see
//! `tspdb_models::forecast`). Each horizon's density then feeds the usual
//! probability value generation query.

use crate::error::CoreError;
use crate::metrics::MetricConfig;
use crate::omega::{probability_values, OmegaSpec, ProbabilityValue};
use tspdb_models::arma::fit_arma;
use tspdb_models::forecast::{arma_forecast_path, forecast_density_variances};
use tspdb_models::garch::fit_garch11;
use tspdb_stats::{Density, Normal};

/// One forecast-horizon density: the predictive distribution of `r_{t+k}`.
#[derive(Debug, Clone, Copy)]
pub struct HorizonDensity {
    /// Steps ahead (1-based: 1 is the paper's usual one-step case).
    pub steps_ahead: usize,
    /// Predictive density.
    pub density: Density,
}

/// Infers predictive densities for the next `horizon` steps from a window,
/// using the ARMA-GARCH machinery of Algorithm 1.
pub fn forecast_densities(
    window: &[f64],
    config: &MetricConfig,
    horizon: usize,
) -> Result<Vec<HorizonDensity>, CoreError> {
    if horizon == 0 {
        return Ok(Vec::new());
    }
    let arma = fit_arma(window, config.p, config.q)?;
    let means = arma_forecast_path(&arma, window, horizon)?;
    let residuals = arma.usable_residuals();
    let garch = fit_garch11(residuals).map_err(CoreError::from)?;
    let last_a = residuals.last().copied().unwrap_or(0.0);
    let last_s2 = garch
        .sigma2
        .last()
        .copied()
        .unwrap_or_else(|| garch.unconditional_variance());
    let vars = forecast_density_variances(&arma, &garch, last_a, last_s2, horizon);
    means
        .into_iter()
        .zip(vars)
        .enumerate()
        .map(|(i, (mean, var))| {
            if !mean.is_finite() || !var.is_finite() || var <= 0.0 {
                return Err(CoreError::Numerics(
                    tspdb_stats::StatsError::DegenerateInput(format!(
                        "non-finite {}-step forecast",
                        i + 1
                    )),
                ));
            }
            Ok(HorizonDensity {
                steps_ahead: i + 1,
                density: Density::Gaussian(Normal::from_mean_var(mean, var)),
            })
        })
        .collect()
}

/// A forecast view row: Ω-lattice probability values for one horizon.
#[derive(Debug, Clone)]
pub struct HorizonView {
    /// Steps ahead.
    pub steps_ahead: usize,
    /// Expected value at that horizon.
    pub expected: f64,
    /// Predictive standard deviation at that horizon.
    pub sigma: f64,
    /// The lattice probabilities.
    pub values: Vec<ProbabilityValue>,
}

/// Builds the forecast view: one Ω lattice per future step.
pub fn forecast_view(
    window: &[f64],
    config: &MetricConfig,
    horizon: usize,
    omega: OmegaSpec,
) -> Result<Vec<HorizonView>, CoreError> {
    Ok(forecast_densities(window, config, horizon)?
        .into_iter()
        .map(|h| HorizonView {
            steps_ahead: h.steps_ahead,
            expected: h.density.mean(),
            sigma: h.density.std(),
            values: probability_values(&h.density, &omega),
        })
        .collect())
}

/// Probability that the series exceeds `threshold` exactly `k` steps ahead
/// (a common monitoring query: "chance we cross 30 °C within the hour").
pub fn prob_exceeds_at(
    window: &[f64],
    config: &MetricConfig,
    steps_ahead: usize,
    threshold: f64,
) -> Result<f64, CoreError> {
    assert!(steps_ahead >= 1, "prob_exceeds_at: horizon is 1-based");
    let densities = forecast_densities(window, config, steps_ahead)?;
    let d = &densities[steps_ahead - 1].density;
    Ok(1.0 - d.cdf(threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_timeseries::generate::{ar1_series, TemperatureGenerator};

    fn window() -> Vec<f64> {
        TemperatureGenerator::default()
            .generate(160)
            .values()
            .to_vec()
    }

    #[test]
    fn horizon_densities_widen_with_steps() {
        let d = forecast_densities(&window(), &MetricConfig::default(), 12).unwrap();
        assert_eq!(d.len(), 12);
        // Predictive uncertainty is non-decreasing with the horizon.
        for pair in d.windows(2) {
            assert!(
                pair[1].density.std() >= pair[0].density.std() * 0.999,
                "σ shrank from step {} to {}",
                pair[0].steps_ahead,
                pair[1].steps_ahead
            );
        }
        assert_eq!(d[0].steps_ahead, 1);
    }

    #[test]
    fn one_step_density_matches_arma_garch_metric() {
        use crate::metrics::{ArmaGarch, DynamicDensityMetric};
        let w = window();
        let cfg = MetricConfig::default();
        let horizon = forecast_densities(&w, &cfg, 1).unwrap();
        let mut metric = ArmaGarch::new(cfg).unwrap();
        let inf = metric.infer(&w).unwrap();
        assert!(
            (horizon[0].density.mean() - inf.expected).abs() < 1e-9,
            "one-step means differ"
        );
        assert!(
            (horizon[0].density.std() - inf.density.std()).abs() < 1e-9,
            "one-step sigmas differ"
        );
    }

    #[test]
    fn forecast_view_masses_are_valid() {
        let omega = OmegaSpec::new(0.5, 8).unwrap();
        let views = forecast_view(&window(), &MetricConfig::default(), 5, omega).unwrap();
        assert_eq!(views.len(), 5);
        for v in &views {
            let mass: f64 = v.values.iter().map(|pv| pv.rho).sum();
            assert!(mass <= 1.0 + 1e-9);
            assert!(v.sigma > 0.0);
            assert_eq!(v.values.len(), 8);
        }
    }

    #[test]
    fn exceedance_probability_is_monotone_in_threshold() {
        let w = window();
        let cfg = MetricConfig::default();
        let p_low = prob_exceeds_at(&w, &cfg, 3, -100.0).unwrap();
        let p_mid = prob_exceeds_at(&w, &cfg, 3, w[w.len() - 1]).unwrap();
        let p_high = prob_exceeds_at(&w, &cfg, 3, 100.0).unwrap();
        assert!(p_low > 0.999);
        assert!(p_high < 0.001);
        assert!((0.0..=1.0).contains(&p_mid));
    }

    #[test]
    fn long_horizon_mean_reverts_for_stationary_series() {
        let s = ar1_series(29, 0.6, 1.0, 2000);
        let cfg = MetricConfig {
            p: 1,
            q: 0,
            ..MetricConfig::default()
        };
        let d = forecast_densities(s.values(), &cfg, 60).unwrap();
        let series_mean = tspdb_stats::descriptive::mean(s.values());
        let far = d.last().unwrap().density.mean();
        assert!(
            (far - series_mean).abs() < 0.3,
            "60-step forecast {far} ≉ series mean {series_mean}"
        );
    }

    #[test]
    fn zero_horizon_is_empty() {
        assert!(forecast_densities(&window(), &MetricConfig::default(), 0)
            .unwrap()
            .is_empty());
    }
}
