//! The Ω lattice and the probability value generation query (paper
//! Definitions 2 and Section VI, eq. 9).
//!
//! A probabilistic view decomposes the value domain into `n` ranges of
//! width `Δ` centred on the expected true value:
//! `Ω = { [r̂_t + λΔ, r̂_t + (λ+1)Δ] : λ = −n/2 … n/2 − 1 }`, and the
//! probability of each range is the integral of the inferred density over
//! it: `ρ_λ = P_t(r̂_t + (λ+1)Δ) − P_t(r̂_t + λΔ)`.

use crate::error::CoreError;
use tspdb_stats::Density;

/// The view parameters `(Δ, n)` of Section VI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmegaSpec {
    /// Cell width `Δ > 0`.
    pub delta: f64,
    /// Cell count `n` (positive and even, per the paper's definition of the
    /// λ range).
    pub n: usize,
}

impl OmegaSpec {
    /// Creates and validates a spec.
    pub fn new(delta: f64, n: usize) -> Result<Self, CoreError> {
        if !(delta > 0.0) || !delta.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "omega delta must be positive and finite, got {delta}"
            )));
        }
        if n == 0 || !n.is_multiple_of(2) {
            return Err(CoreError::InvalidConfig(format!(
                "omega n must be a positive even integer, got {n}"
            )));
        }
        Ok(OmegaSpec { delta, n })
    }

    /// The λ values `−n/2 … n/2 − 1`, one per range.
    pub fn lambdas(&self) -> impl Iterator<Item = i64> {
        let half = self.n as i64 / 2;
        -half..half
    }

    /// The lattice offsets `λΔ` for `λ = −n/2 … n/2` (n + 1 points) —
    /// exactly the evaluation points the σ-cache stores per distribution
    /// (Fig. 9).
    pub fn offsets(&self) -> Vec<f64> {
        let half = self.n as i64 / 2;
        (-half..=half).map(|l| l as f64 * self.delta).collect()
    }

    /// The concrete range `[lo, hi]` of cell `λ` around `r̂`.
    pub fn range(&self, r_hat: f64, lambda: i64) -> (f64, f64) {
        (
            r_hat + lambda as f64 * self.delta,
            r_hat + (lambda + 1) as f64 * self.delta,
        )
    }

    /// Total lattice span `nΔ`.
    pub fn span(&self) -> f64 {
        self.n as f64 * self.delta
    }
}

/// One row of a generated probability view: the paper's `(ω, ρ_ω)` pair at
/// time `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityValue {
    /// Cell index λ.
    pub lambda: i64,
    /// Range lower bound `r̂_t + λΔ`.
    pub lo: f64,
    /// Range upper bound `r̂_t + (λ+1)Δ`.
    pub hi: f64,
    /// Probability mass `ρ_λ` (eq. 9).
    pub rho: f64,
}

/// Evaluates the probability value generation query for one density: the
/// set `Λ_t = {ρ_ω}` of Definition 2, computed directly from the density's
/// CDF.
pub fn probability_values(density: &Density, spec: &OmegaSpec) -> Vec<ProbabilityValue> {
    let r_hat = density.mean();
    // Evaluate the CDF once per lattice point and difference, exactly as
    // eq. 9 prescribes — n + 1 CDF evaluations for n probabilities.
    let offsets = spec.offsets();
    let cdfs: Vec<f64> = offsets.iter().map(|o| density.cdf(r_hat + o)).collect();
    spec.lambdas()
        .enumerate()
        .map(|(i, lambda)| {
            let (lo, hi) = spec.range(r_hat, lambda);
            ProbabilityValue {
                lambda,
                lo,
                hi,
                rho: (cdfs[i + 1] - cdfs[i]).max(0.0),
            }
        })
        .collect()
}

/// Total mass captured by the lattice: `P(r̂ + nΔ/2) − P(r̂ − nΔ/2)`. Views
/// whose lattice is too narrow lose tail mass; callers can check this
/// against a coverage requirement.
pub fn lattice_coverage(density: &Density, spec: &OmegaSpec) -> f64 {
    let r_hat = density.mean();
    let half = spec.span() / 2.0;
    density.prob_in(r_hat - half, r_hat + half)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_stats::{Normal, Uniform};

    fn gaussian(mean: f64, std: f64) -> Density {
        Density::Gaussian(Normal::from_mean_std(mean, std))
    }

    #[test]
    fn spec_validation() {
        assert!(OmegaSpec::new(0.5, 4).is_ok());
        assert!(OmegaSpec::new(0.0, 4).is_err());
        assert!(OmegaSpec::new(-1.0, 4).is_err());
        assert!(OmegaSpec::new(1.0, 3).is_err());
        assert!(OmegaSpec::new(1.0, 0).is_err());
    }

    #[test]
    fn lambda_range_matches_paper() {
        let spec = OmegaSpec::new(2.0, 4).unwrap();
        let ls: Vec<i64> = spec.lambdas().collect();
        assert_eq!(ls, vec![-2, -1, 0, 1]);
        assert_eq!(spec.offsets(), vec![-4.0, -2.0, 0.0, 2.0, 4.0]);
        assert_eq!(spec.range(10.0, -2), (6.0, 8.0));
        assert_eq!(spec.span(), 8.0);
    }

    #[test]
    fn probabilities_sum_to_lattice_coverage() {
        let d = gaussian(5.0, 1.3);
        let spec = OmegaSpec::new(0.5, 12).unwrap();
        let values = probability_values(&d, &spec);
        assert_eq!(values.len(), 12);
        let total: f64 = values.iter().map(|v| v.rho).sum();
        let coverage = lattice_coverage(&d, &spec);
        assert!((total - coverage).abs() < 1e-12);
        assert!(total < 1.0 && total > 0.95);
    }

    #[test]
    fn gaussian_probabilities_are_symmetric() {
        let d = gaussian(0.0, 2.0);
        let spec = OmegaSpec::new(1.0, 8).unwrap();
        let values = probability_values(&d, &spec);
        // ρ_{-λ-1} == ρ_λ by symmetry around the mean.
        for i in 0..4 {
            let left = values[i].rho;
            let right = values[7 - i].rho;
            assert!(
                (left - right).abs() < 1e-12,
                "asymmetry at {i}: {left} vs {right}"
            );
        }
        // Central cells carry the most mass.
        assert!(values[3].rho > values[0].rho);
    }

    #[test]
    fn uniform_density_fills_cells_proportionally() {
        let d = Density::Uniform(Uniform::new(-1.0, 1.0));
        let spec = OmegaSpec::new(0.5, 4).unwrap();
        let values = probability_values(&d, &spec);
        // The uniform support exactly covers the lattice: each cell 0.25.
        for v in &values {
            assert!((v.rho - 0.25).abs() < 1e-12, "{v:?}");
        }
        assert!((lattice_coverage(&d, &spec) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranges_tile_the_lattice_without_gaps() {
        let d = gaussian(3.0, 1.0);
        let spec = OmegaSpec::new(0.7, 10).unwrap();
        let values = probability_values(&d, &spec);
        for pair in values.windows(2) {
            assert!((pair[0].hi - pair[1].lo).abs() < 1e-12);
        }
        assert!((values[0].lo - (3.0 - 3.5)).abs() < 1e-12);
        assert!((values[9].hi - (3.0 + 3.5)).abs() < 1e-12);
    }

    #[test]
    fn mass_concentrates_as_sigma_shrinks() {
        let spec = OmegaSpec::new(0.1, 20).unwrap();
        let wide = probability_values(&gaussian(0.0, 3.0), &spec);
        let narrow = probability_values(&gaussian(0.0, 0.1), &spec);
        let centre = spec.n / 2; // λ = 0 cell
        assert!(narrow[centre].rho > wide[centre].rho * 3.0);
    }

    #[test]
    fn fig1_example_shape() {
        // Alice at time 1: a Gaussian centred in room 1's x-range gives room
        // 1 the highest mass — a sanity replay of the motivating figure.
        let d = gaussian(1.0, 0.8);
        let spec = OmegaSpec::new(1.0, 4).unwrap(); // cells [-2,-1),[-1,0),[0,1),[1,2) around r̂=1
        let values = probability_values(&d, &spec);
        // Cell λ=-1 is [0,1): contains the approach to the mean from below;
        // by symmetry cells adjacent to the mean dominate.
        assert!(values[1].rho > values[0].rho);
        assert!(values[2].rho > values[3].rho);
    }
}
