//! # tspdb-core
//!
//! The primary contribution of *"Creating Probabilistic Databases from
//! Imprecise Time-Series Data"* (Sathe, Jeung, Aberer — ICDE 2011),
//! implemented on the `tspdb` substrate crates:
//!
//! * [`metrics`] — the dynamic density metrics (Definition 1): uniform /
//!   variable thresholding, ARMA-GARCH (Algorithm 1) and Kalman-GARCH.
//! * [`cgarch`] — C-GARCH, the cleaning-enhanced metric (Section V), with
//!   the successive variance reduction filter in [`svr`] (Algorithm 2).
//! * [`quality`] — the density distance quality measure (Section II-B,
//!   eq. 1).
//! * [`omega`] — the Ω lattice and the probability value generation query
//!   (Definition 2, eq. 9).
//! * [`sigma_cache`] — the σ-cache with Theorem 1/2 guarantees
//!   (Section VI-A/B); [`online`] adds the lazily grown streaming variant.
//! * [`builder`] — the Ω-view builder materialising tuple-independent
//!   probabilistic views; [`engine`] exposes it behind the paper's
//!   SQL-like syntax (Fig. 7).
//!
//! ## Quick start
//!
//! ```
//! use tspdb_core::engine::Engine;
//! use tspdb_timeseries::generate::TemperatureGenerator;
//!
//! let mut engine = Engine::default();
//! let series = TemperatureGenerator::default().generate(150);
//! engine.load_series("raw_values", "r", &series).unwrap();
//! engine
//!     .execute("CREATE VIEW prob_view AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
//!     .unwrap();
//! let out = engine.execute("SELECT * FROM prob_view WHERE prob >= 0.2").unwrap();
//! assert!(out.prob_rows().unwrap().len() > 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately catches NaN alongside non-positive values
    // in numeric guards; `partial_cmp` obscures that intent.
    clippy::neg_cmp_op_on_partial_ord,
    // Index-based loops mirror the textbook formulations of the numeric
    // kernels (Cholesky, Levinson-Durbin, filters) they implement.
    clippy::needless_range_loop
)]

pub mod builder;
pub mod cgarch;
pub mod concurrent;
pub mod engine;
pub mod error;
pub mod horizon;
pub mod metrics;
pub mod omega;
pub mod online;
pub mod parallel;
pub mod quality;
pub mod sigma_cache;
pub mod svr;

pub use builder::{BuiltView, OmegaViewBuilder, ViewBuilderConfig};
pub use cgarch::{CGarch, CGarchConfig, CGarchReport};
pub use concurrent::{SharedEngine, SharedSigmaCache};
pub use engine::Engine;
pub use error::CoreError;
pub use metrics::{
    ArmaGarch, DynamicDensityMetric, Inference, KalmanGarch, MetricConfig, MetricKind,
    UniformThresholding, VariableThresholding,
};
pub use omega::{OmegaSpec, ProbabilityValue};
pub use quality::{density_distance, evaluate_metric, MetricEvaluation};
pub use sigma_cache::{CacheStats, SigmaCache, SigmaCacheConfig, SigmaLadder};
/// The persistent storage engine backing [`SharedEngine::open_persistent`]
/// (re-exported so engine users reach the fault-injection and cache
/// diagnostics without a direct `tspdb-storage` dependency).
pub use tspdb_storage as storage;

#[cfg(test)]
mod proptests {
    use crate::omega::{probability_values, OmegaSpec};
    use crate::sigma_cache::{direct_probability_values, SigmaCache, SigmaCacheConfig};
    use proptest::prelude::*;
    use tspdb_stats::{Density, Normal};

    proptest! {
        #[test]
        fn omega_masses_are_valid_probabilities(
            mean in -100.0f64..100.0,
            std in 0.01f64..50.0,
            delta in 0.01f64..5.0,
            half_n in 1usize..40,
        ) {
            let spec = OmegaSpec::new(delta, half_n * 2).unwrap();
            let d = Density::Gaussian(Normal::from_mean_std(mean, std));
            let values = probability_values(&d, &spec);
            let total: f64 = values.iter().map(|v| v.rho).sum();
            prop_assert!(total <= 1.0 + 1e-9);
            for v in &values {
                prop_assert!((0.0..=1.0).contains(&v.rho));
                prop_assert!(v.hi > v.lo);
            }
        }

        #[test]
        fn sigma_cache_never_violates_distance_constraint(
            min_sigma in 0.01f64..1.0,
            spread in 1.0f64..500.0,
            h_prime in 0.005f64..0.2,
            probe in 0.0f64..1.0,
        ) {
            let spec = OmegaSpec::new(0.1, 10).unwrap();
            let max_sigma = min_sigma * spread;
            let cache = SigmaCache::build(
                min_sigma,
                max_sigma,
                spec,
                SigmaCacheConfig {
                    distance_constraint: Some(h_prime),
                    memory_constraint: None,
                },
            )
            .unwrap();
            let sigma = min_sigma + probe * (max_sigma - min_sigma);
            let rung = cache.rung_for(sigma).unwrap();
            let h = tspdb_stats::divergence::hellinger_equal_mean(rung, sigma);
            prop_assert!(h <= h_prime + 1e-9, "H {} > H' {}", h, h_prime);
            // Cached answer stays close to the direct one.
            let cached = cache.probability_values(0.0, sigma);
            let direct = direct_probability_values(0.0, sigma, &spec);
            for (c, d) in cached.iter().zip(&direct) {
                prop_assert!((c.rho - d.rho).abs() < 4.0 * h_prime);
            }
        }

        #[test]
        fn svr_filter_output_length_and_budget(
            spikes in proptest::collection::vec((4usize..28, -500.0f64..500.0), 0..4),
        ) {
            let mut values: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin()).collect();
            for (idx, magnitude) in &spikes {
                values[*idx] += magnitude;
            }
            let out = crate::svr::svr_filter(&values, 0.6);
            prop_assert_eq!(out.values.len(), 32);
            prop_assert!(out.replaced.len() <= 16);
            for v in &out.values {
                prop_assert!(v.is_finite());
            }
        }
    }
}
