//! Dynamic density metrics (paper Sections III–IV).
//!
//! A dynamic density metric answers Definition 1: given a sliding window
//! `S^H_{t-1}`, infer the probability density `p_t(R_t)` of the next raw
//! value. Four metrics are provided:
//!
//! | metric | `r̂_t` (mean) | dispersion | density |
//! |---|---|---|---|
//! | [`UniformThresholding`] | ARMA | user threshold `u` | uniform |
//! | [`VariableThresholding`] | ARMA | window sample variance | Gaussian |
//! | [`ArmaGarch`] | ARMA | GARCH(1,1) forecast | Gaussian |
//! | [`KalmanGarch`] | Kalman filter (EM) | GARCH(1,1) forecast | Gaussian |
//!
//! C-GARCH (Section V) wraps ARMA-GARCH with online cleaning and lives in
//! [`crate::cgarch`].

use crate::error::CoreError;
use tspdb_models::arma::{fit_arma, min_window};
use tspdb_models::garch::fit_garch11;
use tspdb_models::kalman::{fit_em, EmConfig};
use tspdb_stats::{Density, Normal, Uniform};

/// One density inference: the paper's `p_t(R_t)` together with the derived
/// quantities Algorithm 1 returns (`r̂_t`, `σ̂²_t`, κ-scaled bounds).
#[derive(Debug, Clone, Copy)]
pub struct Inference {
    /// The inferred density `p_t(R_t)`.
    pub density: Density,
    /// Expected true value `r̂_t` (Definition 3).
    pub expected: f64,
    /// Lower bound `lb = r̂_t − κ·σ̂_t` (for uniform densities, the range
    /// lower edge).
    pub lower: f64,
    /// Upper bound `ub = r̂_t + κ·σ̂_t`.
    pub upper: f64,
}

impl Inference {
    /// Whether an observation falls inside the κ-scaled bounds — the
    /// C-GARCH erroneous-value trigger.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// A dynamic density metric (paper Definition 1).
///
/// `infer` takes the window `S^H_{t-1}` (oldest value first) and produces
/// the density of the *next* value `r_t`. Implementations re-estimate their
/// models on every call, exactly like the paper's sliding evaluation;
/// metrics needing cross-window state take `&mut self`.
pub trait DynamicDensityMetric {
    /// Short identifier used by `USING METRIC …` and reports.
    fn name(&self) -> &'static str;

    /// Minimum window length this metric can work with.
    fn min_window(&self) -> usize;

    /// Infers `p_t(R_t)` from the window.
    fn infer(&mut self, window: &[f64]) -> Result<Inference, CoreError>;
}

/// Shared configuration for the metric family.
#[derive(Debug, Clone, Copy)]
pub struct MetricConfig {
    /// ARMA AR order `p`.
    pub p: usize,
    /// ARMA MA order `q`.
    pub q: usize,
    /// Bound scaling factor κ (paper Algorithm 1; κ = 3 ⇒ ≈ 0.9973 mass).
    pub kappa: f64,
    /// Uniform-thresholding half-width `u` (ignored by other metrics).
    pub threshold_u: f64,
    /// EM settings for the Kalman filter.
    pub em: EmConfig,
}

impl Default for MetricConfig {
    fn default() -> Self {
        MetricConfig {
            p: 2,
            q: 0,
            kappa: 3.0,
            threshold_u: 1.0,
            // Run EM to tight convergence: the paper attributes
            // Kalman-GARCH's cost profile (Fig. 11) to the slow iterative
            // EM, so the metric should not cut it short.
            em: EmConfig {
                max_iter: 100,
                tol: 1e-9,
            },
        }
    }
}

impl MetricConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.kappa < 0.0 || !self.kappa.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "kappa must be a non-negative finite number, got {}",
                self.kappa
            )));
        }
        if !(self.threshold_u > 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "uniform threshold u must be positive, got {}",
                self.threshold_u
            )));
        }
        Ok(())
    }
}

/// Floor applied to inferred variances: windows can be numerically constant
/// (a flat-lined sensor), and a zero-variance Gaussian is not a usable
/// density for PIT or Ω integration.
const VAR_FLOOR: f64 = 1e-12;

/// Uniform thresholding metric (Section III): ARMA expected value with a
/// user-supplied uncertainty half-width, following Cheng et al.'s
/// fixed-range model.
#[derive(Debug, Clone)]
pub struct UniformThresholding {
    config: MetricConfig,
}

impl UniformThresholding {
    /// Creates the metric.
    pub fn new(config: MetricConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(UniformThresholding { config })
    }
}

impl DynamicDensityMetric for UniformThresholding {
    fn name(&self) -> &'static str {
        "ut"
    }

    fn min_window(&self) -> usize {
        min_window(self.config.p, self.config.q)
    }

    fn infer(&mut self, window: &[f64]) -> Result<Inference, CoreError> {
        let fit = fit_arma(window, self.config.p, self.config.q)?;
        if !fit.forecast.is_finite() {
            return Err(CoreError::Numerics(
                tspdb_stats::StatsError::DegenerateInput("non-finite forecast".into()),
            ));
        }
        let u = self.config.threshold_u;
        let (lo, hi) = (fit.forecast - u, fit.forecast + u);
        Ok(Inference {
            density: Density::Uniform(Uniform::new(lo, hi)),
            expected: fit.forecast,
            lower: lo,
            upper: hi,
        })
    }
}

/// Variable thresholding metric (Section III): ARMA expected value with the
/// window's sample variance as the Gaussian dispersion (eq. 3).
#[derive(Debug, Clone)]
pub struct VariableThresholding {
    config: MetricConfig,
}

impl VariableThresholding {
    /// Creates the metric.
    pub fn new(config: MetricConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(VariableThresholding { config })
    }
}

impl DynamicDensityMetric for VariableThresholding {
    fn name(&self) -> &'static str {
        "vt"
    }

    fn min_window(&self) -> usize {
        min_window(self.config.p, self.config.q)
    }

    fn infer(&mut self, window: &[f64]) -> Result<Inference, CoreError> {
        let fit = fit_arma(window, self.config.p, self.config.q)?;
        let s2 = tspdb_stats::descriptive::sample_variance(window).max(VAR_FLOOR);
        gaussian_inference(fit.forecast, s2, self.config.kappa)
    }
}

/// The ARMA-GARCH metric (Section IV, Algorithm 1): ARMA infers `r̂_t`,
/// GARCH(1,1) on the ARMA innovations infers `σ̂²_t`.
#[derive(Debug, Clone)]
pub struct ArmaGarch {
    config: MetricConfig,
}

impl ArmaGarch {
    /// Creates the metric.
    pub fn new(config: MetricConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(ArmaGarch { config })
    }

    /// Access to the configuration (used by C-GARCH).
    pub fn config(&self) -> &MetricConfig {
        &self.config
    }
}

impl DynamicDensityMetric for ArmaGarch {
    fn name(&self) -> &'static str {
        "arma_garch"
    }

    fn min_window(&self) -> usize {
        // GARCH needs ≥ 20 usable residuals on top of the ARMA warm-up.
        min_window(self.config.p, self.config.q).max(20 + self.config.p.max(self.config.q))
    }

    fn infer(&mut self, window: &[f64]) -> Result<Inference, CoreError> {
        // Step 1: estimate ARMA(p, q) and obtain the innovations a_i.
        let fit = fit_arma(window, self.config.p, self.config.q)?;
        let residuals = fit.usable_residuals();
        // Step 2-3: estimate GARCH(1,1) on the a_i and infer σ̂²_t; a
        // degenerate GARCH fit (flat window) falls back to the innovation
        // variance so the metric keeps producing densities.
        let sigma2 = match fit_garch11(residuals) {
            Ok(g) => g.forecast_from_fit(residuals),
            Err(_) => fit.sigma2_a,
        }
        .max(VAR_FLOOR);
        gaussian_inference(fit.forecast, sigma2, self.config.kappa)
    }
}

/// The Kalman-GARCH metric (Section IV): the Kalman filter (EM-estimated)
/// infers `r̂_t`, GARCH(1,1) on the filter innovations infers `σ̂²_t`.
#[derive(Debug, Clone)]
pub struct KalmanGarch {
    config: MetricConfig,
}

impl KalmanGarch {
    /// Creates the metric.
    pub fn new(config: MetricConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(KalmanGarch { config })
    }
}

impl DynamicDensityMetric for KalmanGarch {
    fn name(&self) -> &'static str {
        "kalman_garch"
    }

    fn min_window(&self) -> usize {
        24
    }

    fn infer(&mut self, window: &[f64]) -> Result<Inference, CoreError> {
        let fit = fit_em(window, &self.config.em)?;
        // Skip the first innovations: the filter needs a few steps to lock
        // onto the state before its prediction errors are meaningful.
        let skip = (window.len() / 10).clamp(1, 5);
        let innovations = &fit.innovations()[skip..];
        let sigma2 = match fit_garch11(innovations) {
            Ok(g) => g.forecast_from_fit(innovations),
            Err(_) => tspdb_stats::descriptive::sample_variance(innovations),
        }
        .max(VAR_FLOOR);
        gaussian_inference(fit.forecast_next(), sigma2, self.config.kappa)
    }
}

/// Builds the Gaussian inference with κ-scaled bounds (Algorithm 1, step 4).
fn gaussian_inference(r_hat: f64, sigma2: f64, kappa: f64) -> Result<Inference, CoreError> {
    if !r_hat.is_finite() || !sigma2.is_finite() {
        return Err(CoreError::Numerics(
            tspdb_stats::StatsError::DegenerateInput("non-finite inference".into()),
        ));
    }
    let sigma = sigma2.sqrt();
    Ok(Inference {
        density: Density::Gaussian(Normal::from_mean_var(r_hat, sigma2)),
        expected: r_hat,
        lower: r_hat - kappa * sigma,
        upper: r_hat + kappa * sigma,
    })
}

/// Identifier of a dynamic density metric, as used by `USING METRIC …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Uniform thresholding.
    UniformThresholding,
    /// Variable thresholding.
    VariableThresholding,
    /// ARMA-GARCH (the paper's main proposal).
    ArmaGarch,
    /// Kalman-GARCH.
    KalmanGarch,
    /// C-GARCH (ARMA-GARCH with online cleaning).
    CGarch,
}

impl MetricKind {
    /// Parses a metric name (case-insensitive; hyphens and underscores are
    /// interchangeable).
    pub fn parse(name: &str) -> Result<Self, CoreError> {
        match name.to_ascii_lowercase().replace('-', "_").as_str() {
            "ut" | "uniform" | "uniform_thresholding" => Ok(MetricKind::UniformThresholding),
            "vt" | "variable" | "variable_thresholding" => Ok(MetricKind::VariableThresholding),
            "arma_garch" | "garch" => Ok(MetricKind::ArmaGarch),
            "kalman_garch" | "kalman" => Ok(MetricKind::KalmanGarch),
            "cgarch" | "c_garch" | "clean_garch" => Ok(MetricKind::CGarch),
            other => Err(CoreError::UnknownMetric(other.to_string())),
        }
    }

    /// All kinds, in the order the paper's figures list them.
    pub fn all() -> [MetricKind; 5] {
        [
            MetricKind::UniformThresholding,
            MetricKind::VariableThresholding,
            MetricKind::ArmaGarch,
            MetricKind::KalmanGarch,
            MetricKind::CGarch,
        ]
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            MetricKind::UniformThresholding => "UT",
            MetricKind::VariableThresholding => "VT",
            MetricKind::ArmaGarch => "ARMA-GARCH",
            MetricKind::KalmanGarch => "Kalman-GARCH",
            MetricKind::CGarch => "C-GARCH",
        }
    }
}

/// Instantiates a metric by kind. C-GARCH is stateful and constructed via
/// [`crate::cgarch::CGarch`]; requesting it here wraps it with default
/// cleaning parameters.
pub fn make_metric(
    kind: MetricKind,
    config: MetricConfig,
) -> Result<Box<dyn DynamicDensityMetric + Send>, CoreError> {
    Ok(match kind {
        MetricKind::UniformThresholding => Box::new(UniformThresholding::new(config)?),
        MetricKind::VariableThresholding => Box::new(VariableThresholding::new(config)?),
        MetricKind::ArmaGarch => Box::new(ArmaGarch::new(config)?),
        MetricKind::KalmanGarch => Box::new(KalmanGarch::new(config)?),
        MetricKind::CGarch => Box::new(crate::cgarch::CGarch::new(
            crate::cgarch::CGarchConfig::default(),
            config,
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_timeseries::generate::{ArmaGarchGenerator, TemperatureGenerator};

    fn garch_window(n: usize) -> Vec<f64> {
        ArmaGarchGenerator::default().generate(n).values().to_vec()
    }

    #[test]
    fn ut_produces_uniform_band_around_forecast() {
        let mut m = UniformThresholding::new(MetricConfig {
            threshold_u: 2.0,
            ..MetricConfig::default()
        })
        .unwrap();
        let w = garch_window(80);
        let inf = m.infer(&w).unwrap();
        assert!((inf.upper - inf.lower - 4.0).abs() < 1e-12);
        assert!((inf.expected - (inf.lower + 2.0)).abs() < 1e-9);
        assert!(matches!(inf.density, Density::Uniform(_)));
        // Uniform density integrates to 1 over the band.
        assert!((inf.density.prob_in(inf.lower, inf.upper) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vt_variance_matches_window_sample_variance() {
        let mut m = VariableThresholding::new(MetricConfig::default()).unwrap();
        let w = garch_window(100);
        let inf = m.infer(&w).unwrap();
        let s2 = tspdb_stats::descriptive::sample_variance(&w);
        assert!((inf.density.var() - s2).abs() < 1e-9);
        assert!(matches!(inf.density, Density::Gaussian(_)));
    }

    #[test]
    fn arma_garch_bounds_scale_with_kappa() {
        let w = garch_window(150);
        let mut m2 = ArmaGarch::new(MetricConfig {
            kappa: 2.0,
            ..MetricConfig::default()
        })
        .unwrap();
        let mut m3 = ArmaGarch::new(MetricConfig {
            kappa: 3.0,
            ..MetricConfig::default()
        })
        .unwrap();
        let i2 = m2.infer(&w).unwrap();
        let i3 = m3.infer(&w).unwrap();
        let half2 = (i2.upper - i2.lower) / 2.0;
        let half3 = (i3.upper - i3.lower) / 2.0;
        assert!((half3 / half2 - 1.5).abs() < 1e-9, "κ scaling broken");
        assert!((i2.expected - i3.expected).abs() < 1e-12);
    }

    #[test]
    fn arma_garch_tracks_volatility_regimes() {
        // Windows ending in the calmest vs. the most volatile part of the
        // synthetic temperature day must produce very different σ̂. The
        // regimes are located from the data itself (rolling dispersion)
        // rather than hard-coded offsets.
        let s = TemperatureGenerator::default().generate(1440); // 2 days
        let h = 120;
        // Locate the regimes with a short rolling window, then take the
        // H-window *ending* at each extreme — the GARCH forecast reflects
        // end-of-window conditional state.
        let short = 20;
        let rolling = tspdb_stats::descriptive::rolling_std(s.values(), short);
        let end_of = |i: usize| (i + short).clamp(h, s.len());
        let (max_i, _) = rolling
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let (min_i, _) = rolling
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let mut m = ArmaGarch::new(MetricConfig::default()).unwrap();
        let vol_end = end_of(max_i);
        let calm_end = end_of(min_i);
        let vol_sigma = m
            .infer(&s.values()[vol_end - h..vol_end])
            .unwrap()
            .density
            .std();
        let calm_sigma = m
            .infer(&s.values()[calm_end - h..calm_end])
            .unwrap()
            .density
            .std();
        assert!(
            vol_sigma > calm_sigma * 1.5,
            "volatile σ {vol_sigma} not ≫ calm σ {calm_sigma}"
        );
    }

    #[test]
    fn kalman_garch_infers_plausible_density() {
        let w = garch_window(120);
        let mut m = KalmanGarch::new(MetricConfig::default()).unwrap();
        let inf = m.infer(&w).unwrap();
        assert!(inf.density.var() > 0.0);
        assert!(inf.contains(inf.expected));
        // The forecast should be in the vicinity of the last observations.
        let recent = tspdb_stats::descriptive::mean(&w[110..]);
        assert!((inf.expected - recent).abs() < 5.0);
    }

    #[test]
    fn constant_window_still_yields_density() {
        let w = vec![7.0; 100];
        let mut m = ArmaGarch::new(MetricConfig::default()).unwrap();
        let inf = m.infer(&w).unwrap();
        assert!((inf.expected - 7.0).abs() < 1e-3);
        assert!(inf.density.var() >= VAR_FLOOR);
    }

    #[test]
    fn short_window_is_reported() {
        let mut m = ArmaGarch::new(MetricConfig::default()).unwrap();
        assert!(matches!(
            m.infer(&[1.0, 2.0, 3.0]),
            Err(CoreError::WindowTooShort { .. })
        ));
    }

    #[test]
    fn metric_kind_parsing() {
        assert_eq!(
            MetricKind::parse("ARMA-GARCH").unwrap(),
            MetricKind::ArmaGarch
        );
        assert_eq!(
            MetricKind::parse("ut").unwrap(),
            MetricKind::UniformThresholding
        );
        assert_eq!(
            MetricKind::parse("Kalman").unwrap(),
            MetricKind::KalmanGarch
        );
        assert_eq!(MetricKind::parse("cgarch").unwrap(), MetricKind::CGarch);
        assert!(matches!(
            MetricKind::parse("nope"),
            Err(CoreError::UnknownMetric(_))
        ));
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in MetricKind::all() {
            let m = make_metric(kind, MetricConfig::default()).unwrap();
            assert!(!m.name().is_empty());
            assert!(m.min_window() > 0);
        }
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(MetricConfig {
            kappa: -1.0,
            ..MetricConfig::default()
        }
        .validate()
        .is_err());
        assert!(MetricConfig {
            threshold_u: 0.0,
            ..MetricConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn kappa_three_bounds_capture_nearly_all_mass() {
        let w = garch_window(150);
        let mut m = ArmaGarch::new(MetricConfig::default()).unwrap();
        let inf = m.infer(&w).unwrap();
        let mass = inf.density.prob_in(inf.lower, inf.upper);
        assert!((mass - 0.9973).abs() < 1e-3, "κ=3 mass {mass}");
    }
}
