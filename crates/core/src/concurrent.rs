//! Thread-safe sharing of the read path: σ-cache and engine.
//!
//! The paper positions the σ-cache as "an attractive solution for
//! large-scale data processing"; in a server setting many query threads
//! answer probability value generation queries against one cache and run
//! `SELECT`s against one engine. Both are **lock-free on the read path**:
//!
//! * [`SharedSigmaCache`] is a thin `Arc` around [`SigmaCache`], whose
//!   ladder is immutable and whose hit/miss counters are relaxed atomics —
//!   lookups take `&self` and no thread ever blocks another. (Earlier
//!   revisions serialized every lookup behind a `Mutex` just to bump the
//!   counters; the atomic counters removed the last reason for exclusive
//!   access.)
//! * [`SharedEngine`] shares one catalog behind an [`RwLock`]: `SELECT`s
//!   take the read lock and run concurrently, only mutating statements
//!   (loads, `INSERT`, `DROP`, view registration) take the write lock.
//!   Density-view *builds* — the expensive part of `CREATE VIEW … AS
//!   DENSITY` — run under the read lock too, since building only reads the
//!   source table; the write lock is held just long enough to register the
//!   finished view.

use crate::builder::ViewBuilderConfig;
use crate::engine::{build_density_view, series_to_table, Engine, LastBuild};
use crate::error::CoreError;
use crate::omega::{OmegaSpec, ProbabilityValue};
use crate::sigma_cache::{CacheStats, SigmaCache, SigmaCacheConfig};
use std::path::Path;
use std::sync::{Arc, RwLock, RwLockReadGuard};
use tspdb_probdb::{Database, DbError, QueryOutput, Relation, ScanSource, Statement, Table};
use tspdb_storage::{JournalOp, Storage, StorageOptions};
use tspdb_timeseries::TimeSeries;

/// WAL size (bytes of redo records) above which a journaled write
/// triggers an automatic checkpoint. Checkpoints rewrite the whole
/// database file, so the threshold trades recovery time against write
/// amplification.
const WAL_AUTOCHECKPOINT_BYTES: u64 = 4 * 1024 * 1024;

/// A cloneable handle to a shared σ-cache.
///
/// Clones share the ladder *and* the usage counters. Since
/// [`SigmaCache::probability_values`] takes `&self`, this wrapper is nothing
/// but an `Arc` — there is no lock to acquire on any path.
#[derive(Debug, Clone)]
pub struct SharedSigmaCache {
    inner: Arc<SigmaCache>,
}

impl SharedSigmaCache {
    /// Builds the underlying cache (same parameters as
    /// [`SigmaCache::build`]) and wraps it for sharing.
    pub fn build(
        min_sigma: f64,
        max_sigma: f64,
        omega: OmegaSpec,
        config: SigmaCacheConfig,
    ) -> Result<Self, CoreError> {
        Ok(SharedSigmaCache {
            inner: Arc::new(SigmaCache::build(min_sigma, max_sigma, omega, config)?),
        })
    }

    /// Wraps an already-built cache.
    pub fn from_cache(cache: SigmaCache) -> Self {
        SharedSigmaCache {
            inner: Arc::new(cache),
        }
    }

    /// The shared cache itself; [`SigmaCache`]'s whole API is available on
    /// the reference.
    pub fn cache(&self) -> &SigmaCache {
        &self.inner
    }

    /// Answers the probability value generation query (see
    /// [`SigmaCache::probability_values`]).
    pub fn probability_values(&self, r_hat: f64, sigma: f64) -> Vec<ProbabilityValue> {
        self.inner.probability_values(r_hat, sigma)
    }

    /// Aggregated usage counters across all threads, read as one snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Number of cached distributions.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the ladder is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

/// A cloneable, `Send + Sync` handle to one engine shared across threads.
///
/// The catalog (the [`Database`] of tables and views) is the only state
/// behind a lock; the builder defaults are immutable and the last-build
/// diagnostics sit behind their own small lock so they never contend with
/// queries.
#[derive(Debug, Clone)]
pub struct SharedEngine {
    catalog: Arc<RwLock<Database>>,
    defaults: ViewBuilderConfig,
    last_build: Arc<RwLock<Option<LastBuild>>>,
    /// The persistent storage engine, when this engine was opened with
    /// [`SharedEngine::open_persistent`]. `None` = purely in-memory.
    storage: Option<Arc<Storage>>,
}

impl Default for SharedEngine {
    fn default() -> Self {
        SharedEngine::new(ViewBuilderConfig::default())
    }
}

impl SharedEngine {
    /// Creates a shared engine with the given view-builder defaults.
    pub fn new(defaults: ViewBuilderConfig) -> Self {
        SharedEngine {
            catalog: Arc::new(RwLock::new(Database::new())),
            defaults,
            last_build: Arc::new(RwLock::new(None)),
            storage: None,
        }
    }

    /// Promotes a single-threaded [`Engine`] (tables, views and build
    /// diagnostics included) into a shared handle.
    pub fn from_engine(engine: Engine) -> Self {
        let (db, defaults, last_build) = engine.into_parts();
        SharedEngine {
            catalog: Arc::new(RwLock::new(db)),
            defaults,
            last_build: Arc::new(RwLock::new(last_build)),
            storage: None,
        }
    }

    /// Opens (creating if absent) a **persistent** engine on `dir` and
    /// runs crash recovery:
    ///
    /// 1. load every relation of the checkpointed database file into the
    ///    catalog (probabilistic views go through registration, which
    ///    rebuilds their synopses deterministically from the tuples);
    /// 2. replay the write-ahead log's committed suffix through the normal
    ///    write path — per-statement errors are ignored, because a
    ///    statement that failed deterministically before the crash fails
    ///    identically on replay and leaves the same state;
    /// 3. checkpoint immediately, so the on-disk file equals the
    ///    post-replay state before any query is served;
    /// 4. attach the storage engine as the catalog's scan source, so
    ///    evicted relations are served from disk behind the same scan leaf.
    ///
    /// Every later mutating statement is journaled to the WAL (fsync on
    /// commit) **before** it is applied in memory.
    pub fn open_persistent(dir: &Path, defaults: ViewBuilderConfig) -> Result<Self, CoreError> {
        let (storage, recovery) = Storage::open(dir, StorageOptions::default())
            .map_err(DbError::from)
            .map_err(CoreError::from)?;
        let storage = Arc::new(storage);
        let engine = SharedEngine {
            catalog: Arc::new(RwLock::new(Database::new())),
            defaults,
            last_build: Arc::new(RwLock::new(None)),
            storage: Some(Arc::clone(&storage)),
        };
        {
            let mut catalog = engine.catalog.write().expect("catalog lock poisoned");
            // 1. Checkpointed relations.
            for name in storage.relation_names() {
                if let Some(relation) = storage.scan(&name).map_err(DbError::from)? {
                    match relation {
                        Relation::Deterministic(t) => catalog.register_table(t)?,
                        Relation::Probabilistic(t) => catalog.register_prob_table(t)?,
                    }
                }
            }
            // 2. WAL replay (no re-logging).
            for op in &recovery.ops {
                let _ = engine.replay_op(&mut catalog, op);
            }
            // 3. Boot checkpoint: disk == post-replay state, WAL empty.
            engine.checkpoint_locked(&mut catalog, &storage)?;
            // 4. Disk-backed scans behind the same scan leaf.
            catalog.attach_scan_source(Arc::clone(&storage) as Arc<dyn ScanSource>);
        }
        Ok(engine)
    }

    /// The persistent storage engine, if this engine has one (fault
    /// injection and cache diagnostics hang off this handle).
    pub fn storage(&self) -> Option<&Arc<Storage>> {
        self.storage.as_ref()
    }

    /// Applies one recovered journal operation without journaling it
    /// again. Errors are returned for the caller to ignore — see
    /// [`SharedEngine::open_persistent`] for why that is sound.
    fn replay_op(&self, catalog: &mut Database, op: &JournalOp) -> Result<(), CoreError> {
        match op {
            JournalOp::Sql(sql) => {
                let stmt = tspdb_probdb::parse(sql)?;
                self.apply_locked(catalog, stmt)?;
            }
            JournalOp::LoadTable { name, schema, rows } => {
                let mut table = Table::new(name.clone(), schema.clone());
                for row in rows {
                    table.insert(row.clone())?;
                }
                catalog.register_table(table)?;
            }
        }
        Ok(())
    }

    /// Applies a statement against an exclusively borrowed catalog — the
    /// write path shared by journaled execution and WAL replay. Density
    /// views build inside the exclusive borrow here (unlike the in-memory
    /// engine's build-under-read-lock path) so the WAL's commit order and
    /// the apply order are the same order.
    fn apply_locked(
        &self,
        catalog: &mut Database,
        stmt: Statement,
    ) -> Result<QueryOutput, CoreError> {
        match stmt {
            Statement::CreateDensityView(spec) => {
                let (view, built) = build_density_view(catalog, self.defaults, &spec)?;
                catalog.register_prob_table(view)?;
                *self.last_build.write().expect("last-build lock poisoned") = Some(LastBuild {
                    view_name: spec.view_name.clone(),
                    built,
                });
                Ok(QueryOutput::None)
            }
            other => catalog.execute_parsed(other).map_err(CoreError::from),
        }
    }

    /// Collects every reachable relation and writes a checkpoint, with the
    /// catalog exclusively borrowed so the snapshot is consistent with the
    /// WAL floor. Evicted relations are made resident first so the new
    /// file keeps them.
    fn checkpoint_locked(
        &self,
        catalog: &mut Database,
        storage: &Storage,
    ) -> Result<(), CoreError> {
        let names = catalog.all_relation_names();
        for name in &names {
            catalog.ensure_resident(name)?;
        }
        let relations: Vec<Relation> = names
            .iter()
            .filter_map(|n| catalog.relation(n).cloned())
            .collect();
        storage
            .checkpoint(&relations)
            .map_err(DbError::from)
            .map_err(CoreError::from)
    }

    /// Forces a checkpoint now: rewrites the database file from the
    /// current catalog, truncates the WAL. No-op error when the engine is
    /// not persistent.
    pub fn checkpoint(&self) -> Result<(), CoreError> {
        let storage = self.storage.as_ref().ok_or_else(|| {
            CoreError::Db(DbError::Storage("engine has no data directory".into()))
        })?;
        let mut catalog = self.catalog.write().expect("catalog lock poisoned");
        self.checkpoint_locked(&mut catalog, storage)
    }

    /// Checkpoints, then drops the named relation's tuples from memory
    /// while keeping its synopses; subsequent scans are served from disk
    /// through the page cache — with bit-identical query results, which is
    /// what the persistence differential tests pin down.
    pub fn evict_to_disk(&self, name: &str) -> Result<(), CoreError> {
        let storage = self.storage.as_ref().ok_or_else(|| {
            CoreError::Db(DbError::Storage("engine has no data directory".into()))
        })?;
        let mut catalog = self.catalog.write().expect("catalog lock poisoned");
        self.checkpoint_locked(&mut catalog, storage)?;
        catalog.evict_relation(name)?;
        Ok(())
    }

    /// Read access to the catalog. Holding the guard blocks writers (not
    /// readers); drop it promptly.
    pub fn read(&self) -> RwLockReadGuard<'_, Database> {
        self.catalog.read().expect("catalog lock poisoned")
    }

    /// Runs a read-only statement (`SELECT`) under the shared read lock.
    /// Any number of threads can be inside this call at once.
    pub fn query(&self, sql: &str) -> Result<QueryOutput, CoreError> {
        self.read().query(sql).map_err(CoreError::from)
    }

    /// [`SharedEngine::query`] through the catalog's shared plan cache:
    /// hot statements skip parse+plan across *all* sessions. Semantics
    /// are identical to [`SharedEngine::query`] — every DDL/write bumps
    /// the catalog generation, which invalidates cached plans.
    pub fn query_cached(&self, sql: &str) -> Result<QueryOutput, CoreError> {
        self.read().query_cached(sql).map_err(CoreError::from)
    }

    /// The catalog generation (bumped by every DDL/write; keys the plan
    /// cache).
    pub fn catalog_generation(&self) -> u64 {
        self.read().generation()
    }

    /// Plan-cache effectiveness counters, for diagnostics and benches.
    pub fn plan_cache_stats(&self) -> tspdb_probdb::PlanCacheStats {
        self.read().plan_cache_stats()
    }

    /// Executes any SQL statement.
    ///
    /// * `SELECT` / `EXPLAIN` — read lock, concurrent with other readers.
    /// * `CREATE VIEW … AS DENSITY` — the view is **built under the read
    ///   lock** (inference only reads the source table), then registered
    ///   under a brief write lock, so long builds do not starve queries.
    ///   The build therefore works on a *snapshot*: if a writer replaces
    ///   the source table in the gap, the registered view still reflects
    ///   the data that was visible when the build began. Registration and
    ///   the last-build diagnostics are updated inside one write-lock
    ///   critical section, so `last_build()` always names the view
    ///   registered last.
    /// * Everything else — write lock.
    pub fn execute(&self, sql: &str) -> Result<QueryOutput, CoreError> {
        let stmt = tspdb_probdb::parse(sql)?;
        self.execute_journaled(Some(sql), stmt)
    }

    /// [`SharedEngine::execute`] for an already-parsed statement — the
    /// parse-free entry point for callers that classified the statement
    /// themselves. Lock discipline is identical to `execute`.
    ///
    /// On a **persistent** engine, mutating statements are rejected here:
    /// the journal records original SQL text, so persistent writers must
    /// supply it via [`SharedEngine::execute_sql_statement`] (or
    /// [`SharedEngine::execute`]).
    pub fn execute_statement(
        &self,
        stmt: tspdb_probdb::Statement,
    ) -> Result<QueryOutput, CoreError> {
        self.execute_journaled(None, stmt)
    }

    /// [`SharedEngine::execute_statement`] with the statement's original
    /// SQL text alongside the parsed form — the entry point the wire
    /// server uses, avoiding a re-parse while keeping the journal able to
    /// record the text.
    pub fn execute_sql_statement(
        &self,
        sql: &str,
        stmt: tspdb_probdb::Statement,
    ) -> Result<QueryOutput, CoreError> {
        self.execute_journaled(Some(sql), stmt)
    }

    /// The write path behind every `execute*` variant. In-memory engines
    /// keep the original lock discipline (density views build under the
    /// read lock). Persistent engines serialise mutating statements under
    /// the write lock and journal them **before** applying: append + fsync
    /// to the WAL first, then apply in memory — the redo-log ordering that
    /// makes the committed prefix recoverable. Holding the write lock
    /// across both steps keeps WAL order and apply order identical, which
    /// replay depends on.
    fn execute_journaled(
        &self,
        sql: Option<&str>,
        stmt: tspdb_probdb::Statement,
    ) -> Result<QueryOutput, CoreError> {
        let mutating = !matches!(stmt, Statement::Select(_) | Statement::Explain(_));
        if let (Some(storage), true) = (&self.storage, mutating) {
            let Some(sql) = sql else {
                return Err(CoreError::Db(DbError::Storage(
                    "persistent engines journal original SQL text; \
                     use execute() or execute_sql_statement()"
                        .into(),
                )));
            };
            let mut catalog = self.catalog.write().expect("catalog lock poisoned");
            storage
                .log(&JournalOp::Sql(sql.to_string()))
                .map_err(DbError::from)?;
            let out = self.apply_locked(&mut catalog, stmt)?;
            if storage.wal_bytes().map_err(DbError::from)? >= WAL_AUTOCHECKPOINT_BYTES {
                self.checkpoint_locked(&mut catalog, storage)?;
            }
            return Ok(out);
        }
        match stmt {
            tspdb_probdb::Statement::CreateDensityView(spec) => {
                let (view, built) = build_density_view(&self.read(), self.defaults, &spec)?;
                {
                    // Lock order: catalog before last_build (the only place
                    // both are held at once).
                    let mut catalog = self.catalog.write().expect("catalog lock poisoned");
                    catalog.register_prob_table(view)?;
                    *self.last_build.write().expect("last-build lock poisoned") = Some(LastBuild {
                        view_name: spec.view_name.clone(),
                        built,
                    });
                }
                Ok(QueryOutput::None)
            }
            tspdb_probdb::Statement::Select(sel) => {
                self.read().query_select(&sel).map_err(CoreError::from)
            }
            tspdb_probdb::Statement::Explain(sel) => {
                self.read().explain_select(&sel).map_err(CoreError::from)
            }
            other => self
                .catalog
                .write()
                .expect("catalog lock poisoned")
                .execute_parsed(other)
                .map_err(CoreError::from),
        }
    }

    /// Loads a time series as a `(t INT, <value_col> FLOAT)` table (write
    /// lock; see [`Engine::load_series`]).
    pub fn load_series(
        &self,
        table_name: &str,
        value_column: &str,
        series: &TimeSeries,
    ) -> Result<(), CoreError> {
        let table = series_to_table(table_name, value_column, series)?;
        let mut catalog = self.catalog.write().expect("catalog lock poisoned");
        if let Some(storage) = &self.storage {
            // No SQL text exists for a programmatic load, so the journal
            // records the finished table itself (schema + rows, floats as
            // bit patterns) — replay re-registers it verbatim.
            storage
                .log(&JournalOp::LoadTable {
                    name: table.name().to_string(),
                    schema: table.schema().clone(),
                    rows: table.rows().to_vec(),
                })
                .map_err(DbError::from)?;
        }
        catalog.register_table(table)?;
        Ok(())
    }

    /// Diagnostics of the most recent density-view build on this shared
    /// engine (cloned out so no lock is held by the caller).
    pub fn last_build(&self) -> Option<LastBuild> {
        self.last_build
            .read()
            .expect("last-build lock poisoned")
            .clone()
    }

    /// Sets the fork-join width for `SELECT … WITH WORLDS` queries (`0` =
    /// one thread per core). The knob is an atomic on the catalog's read
    /// path, so tuning it takes only the *read* lock and never blocks
    /// concurrent queries; the Monte-Carlo queries themselves also run
    /// under the read lock like every other `SELECT`. The width never
    /// changes MC estimates, only their latency.
    pub fn set_worlds_threads(&self, threads: usize) {
        self.read().set_worlds_threads(threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricConfig;
    use crate::sigma_cache::direct_probability_values;
    use tspdb_timeseries::generate::TemperatureGenerator;

    fn shared() -> SharedSigmaCache {
        SharedSigmaCache::build(
            0.1,
            10.0,
            OmegaSpec::new(0.1, 20).unwrap(),
            SigmaCacheConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn concurrent_queries_agree_with_direct_evaluation() {
        let cache = shared();
        let omega = OmegaSpec::new(0.1, 20).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let sigma = 0.1 + (worker * 200 + i) as f64 * 0.006;
                        let got = cache.probability_values(5.0, sigma);
                        let want = direct_probability_values(5.0, sigma, &omega);
                        for (g, w) in got.iter().zip(&want) {
                            assert!(
                                (g.rho - w.rho).abs() < 0.05,
                                "worker {worker}: σ {sigma} mismatch"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
        assert_eq!(stats.misses, 0, "all sigmas were in range");
    }

    #[test]
    fn clones_share_state() {
        let cache = shared();
        let clone = cache.clone();
        clone.probability_values(0.0, 1.0);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), clone.len());
        assert!(!cache.is_empty());
        assert!(cache.memory_bytes() > 0);
    }

    fn shared_engine_with_view() -> SharedEngine {
        let engine = SharedEngine::new(ViewBuilderConfig {
            window: 60,
            metric_config: MetricConfig {
                p: 1,
                ..MetricConfig::default()
            },
            ..ViewBuilderConfig::default()
        });
        let series = TemperatureGenerator::default().generate(150);
        engine.load_series("raw_values", "r", &series).unwrap();
        engine
            .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        engine
    }

    #[test]
    fn shared_engine_plan_cache_is_shared_and_generation_invalidated() {
        let engine = shared_engine_with_view();
        let sql = "SELECT * FROM pv WHERE prob >= 0.1";
        let baseline = engine.query(sql).unwrap();
        // Warm the cache once (one miss), then concurrent "sessions" all
        // run the same hot statement: every one of them hits.
        assert_eq!(engine.query_cached(sql).unwrap(), baseline);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..4 {
                        assert_eq!(engine.query_cached(sql).unwrap(), baseline);
                    }
                });
            }
        });
        let stats = engine.plan_cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 32, "{stats:?}");
        // A write bumps the generation and invalidates the cached plan,
        // but answers stay correct (and reflect the write).
        let g = engine.catalog_generation();
        engine.execute("CREATE TABLE extra (k INT)").unwrap();
        assert!(engine.catalog_generation() > g);
        assert_eq!(engine.query_cached(sql).unwrap(), baseline);
        let stats = engine.plan_cache_stats();
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert_eq!(stats.invalidations, 1, "{stats:?}");
    }

    #[test]
    fn shared_engine_serves_selects_from_many_threads() {
        let engine = shared_engine_with_view();
        let expected = engine
            .query("SELECT * FROM pv WHERE prob >= 0.1")
            .unwrap()
            .prob_rows()
            .unwrap()
            .len();
        assert!(expected > 0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let engine = engine.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        let got = engine
                            .query("SELECT * FROM pv WHERE prob >= 0.1")
                            .unwrap()
                            .prob_rows()
                            .unwrap()
                            .len();
                        assert_eq!(got, expected);
                    }
                });
            }
        });
    }

    #[test]
    fn shared_engine_runs_mc_selects_concurrently_and_identically() {
        let engine = shared_engine_with_view();
        engine.set_worlds_threads(2);
        const MC_SQL: &str = "SELECT * FROM pv WITH WORLDS 2000 SEED 21";
        let expected = engine
            .query(MC_SQL)
            .unwrap()
            .worlds()
            .unwrap()
            .fingerprint();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let engine = engine.clone();
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..5 {
                        let got = engine.query(MC_SQL).unwrap();
                        assert_eq!(&got.worlds().unwrap().fingerprint(), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn shared_engine_serves_aggregates_and_explain_under_the_read_lock() {
        let engine = shared_engine_with_view();
        engine.set_worlds_threads(2);
        const AGG_SQL: &str =
            "SELECT t, COUNT(*), SUM(lambda) FROM pv GROUP BY t HAVING COUNT(*) >= 2 \
             WITH WORLDS 1000 SEED 13";
        let expected = engine
            .query(AGG_SQL)
            .unwrap()
            .aggregate()
            .unwrap()
            .fingerprint();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let engine = engine.clone();
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..3 {
                        let got = engine.query(AGG_SQL).unwrap();
                        assert_eq!(&got.aggregate().unwrap().fingerprint(), expected);
                        let report = engine.query(&format!("EXPLAIN {AGG_SQL}")).unwrap();
                        let report = report.explain().unwrap();
                        assert!(report.strategy.contains("worlds"));
                    }
                });
            }
        });
    }

    #[test]
    fn shared_engine_mixes_reads_and_writes() {
        let engine = shared_engine_with_view();
        std::thread::scope(|s| {
            let reader = engine.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    let out = reader.query("SELECT * FROM pv LIMIT 5").unwrap();
                    assert_eq!(out.prob_rows().unwrap().len(), 5);
                }
            });
            let writer = engine.clone();
            s.spawn(move || {
                writer.execute("CREATE TABLE scratch (x INT)").unwrap();
                writer
                    .execute("INSERT INTO scratch VALUES (1), (2)")
                    .unwrap();
            });
        });
        let out = engine.query("SELECT * FROM scratch").unwrap();
        assert_eq!(out.rows().unwrap().len(), 2);
    }

    #[test]
    fn shared_engine_from_engine_preserves_state() {
        let mut e = Engine::new(ViewBuilderConfig {
            window: 60,
            metric_config: MetricConfig {
                p: 1,
                ..MetricConfig::default()
            },
            ..ViewBuilderConfig::default()
        });
        let series = TemperatureGenerator::default().generate(150);
        e.load_series("raw_values", "r", &series).unwrap();
        e.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        let rows_before = e
            .query("SELECT * FROM pv")
            .unwrap()
            .prob_rows()
            .unwrap()
            .len();

        let shared = SharedEngine::from_engine(e);
        let rows_after = shared
            .query("SELECT * FROM pv")
            .unwrap()
            .prob_rows()
            .unwrap()
            .len();
        assert_eq!(rows_before, rows_after);
        assert_eq!(shared.last_build().unwrap().view_name, "pv");
        assert!(shared.read().prob_table("pv").is_ok());
    }

    #[test]
    fn shared_engine_rebuilds_views_concurrently_with_reads() {
        let engine = shared_engine_with_view();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reader = engine.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        reader.query("SELECT * FROM pv LIMIT 1").unwrap();
                    }
                });
            }
            let builder = engine.clone();
            s.spawn(move || {
                builder
                    .execute(
                        "CREATE VIEW pv2 AS DENSITY r OVER t OMEGA delta=0.5, n=4 \
                         FROM raw_values",
                    )
                    .unwrap();
            });
        });
        assert_eq!(engine.last_build().unwrap().view_name, "pv2");
        assert!(engine.read().prob_table("pv2").is_ok());
    }
}
