//! Thread-safe σ-cache sharing.
//!
//! The paper positions the σ-cache as "an attractive solution for
//! large-scale data processing"; in a server setting many query threads
//! answer probability value generation queries against one cache. A built
//! [`SigmaCache`] is read-mostly (lookups only mutate hit/miss counters),
//! so a [`parking_lot::Mutex`] around it gives cheap sharing without
//! poisoning semantics; [`SharedSigmaCache`] is `Clone + Send + Sync` and
//! can be handed to worker threads directly.

use crate::error::CoreError;
use crate::omega::{OmegaSpec, ProbabilityValue};
use crate::sigma_cache::{CacheStats, SigmaCache, SigmaCacheConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// A cloneable handle to a shared σ-cache.
#[derive(Debug, Clone)]
pub struct SharedSigmaCache {
    inner: Arc<Mutex<SigmaCache>>,
}

impl SharedSigmaCache {
    /// Builds the underlying cache (same parameters as
    /// [`SigmaCache::build`]) and wraps it for sharing.
    pub fn build(
        min_sigma: f64,
        max_sigma: f64,
        omega: OmegaSpec,
        config: SigmaCacheConfig,
    ) -> Result<Self, CoreError> {
        Ok(SharedSigmaCache {
            inner: Arc::new(Mutex::new(SigmaCache::build(
                min_sigma, max_sigma, omega, config,
            )?)),
        })
    }

    /// Wraps an already-built cache.
    pub fn from_cache(cache: SigmaCache) -> Self {
        SharedSigmaCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// Answers the probability value generation query (see
    /// [`SigmaCache::probability_values`]).
    pub fn probability_values(&self, r_hat: f64, sigma: f64) -> Vec<ProbabilityValue> {
        self.inner.lock().probability_values(r_hat, sigma)
    }

    /// Aggregated usage counters across all threads.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats()
    }

    /// Number of cached distributions.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the ladder is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.inner.lock().memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma_cache::direct_probability_values;

    fn shared() -> SharedSigmaCache {
        SharedSigmaCache::build(
            0.1,
            10.0,
            OmegaSpec::new(0.1, 20).unwrap(),
            SigmaCacheConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn concurrent_queries_agree_with_direct_evaluation() {
        let cache = shared();
        let omega = OmegaSpec::new(0.1, 20).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let sigma = 0.1 + (worker * 200 + i) as f64 * 0.006;
                        let got = cache.probability_values(5.0, sigma);
                        let want = direct_probability_values(5.0, sigma, &omega);
                        for (g, w) in got.iter().zip(&want) {
                            assert!(
                                (g.rho - w.rho).abs() < 0.05,
                                "worker {worker}: σ {sigma} mismatch"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
        assert_eq!(stats.misses, 0, "all sigmas were in range");
    }

    #[test]
    fn clones_share_state() {
        let cache = shared();
        let clone = cache.clone();
        clone.probability_values(0.0, 1.0);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), clone.len());
        assert!(!cache.is_empty());
        assert!(cache.memory_bytes() > 0);
    }
}
