//! Thread-safe sharing of the read path: σ-cache and engine.
//!
//! The paper positions the σ-cache as "an attractive solution for
//! large-scale data processing"; in a server setting many query threads
//! answer probability value generation queries against one cache and run
//! `SELECT`s against one engine. Both are **lock-free on the read path**:
//!
//! * [`SharedSigmaCache`] is a thin `Arc` around [`SigmaCache`], whose
//!   ladder is immutable and whose hit/miss counters are relaxed atomics —
//!   lookups take `&self` and no thread ever blocks another. (Earlier
//!   revisions serialized every lookup behind a `Mutex` just to bump the
//!   counters; the atomic counters removed the last reason for exclusive
//!   access.)
//! * [`SharedEngine`] shares one catalog behind an [`RwLock`]: `SELECT`s
//!   take the read lock and run concurrently, only mutating statements
//!   (loads, `INSERT`, `DROP`, view registration) take the write lock.
//!   Density-view *builds* — the expensive part of `CREATE VIEW … AS
//!   DENSITY` — run under the read lock too, since building only reads the
//!   source table; the write lock is held just long enough to register the
//!   finished view.
//!
//! ## Streaming ingestion
//!
//! [`SharedEngine::append_batches`] is the write path of the `tspdb-ingest`
//! subsystem: a whole flush of per-relation row batches is journaled as one
//! group commit (one WAL fsync amortized over every batch), applied under
//! one write lock, and every Ω-view derived from an appended source table
//! is maintained in place. When the fresh rows are a strict suffix in time
//! and densities are evaluated directly (no σ-cache), maintenance re-runs
//! the builder over just the new time interval and *appends* the resulting
//! tuples — bit-identical to a full rebuild, because per-window density
//! inference is stateless. Any other shape falls back to the rebuild.
//! Appends bump only the catalog's *data* generation, so cached plans and
//! in-flight [`tspdb_probdb::RelationSnapshot`] readers survive a stream of
//! them untouched.

use crate::builder::ViewBuilderConfig;
use crate::engine::{build_density_view, series_to_table, Engine, LastBuild};
use crate::error::CoreError;
use crate::omega::{OmegaSpec, ProbabilityValue};
use crate::sigma_cache::{CacheStats, SigmaCache, SigmaCacheConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use tspdb_probdb::{
    CmpOp, Comparison, Database, DbError, DensityViewSpec, Planner, QueryOutput, Relation,
    ScanSource, SelectStmt, Statement, Table, Value,
};
use tspdb_storage::{CheckpointSource, JournalOp, Storage, StorageOptions};
use tspdb_timeseries::TimeSeries;

/// WAL size (bytes of redo records) above which a journaled write
/// triggers an automatic checkpoint. Checkpoints are incremental — they
/// shadow-write only the pages of relations written since the last one —
/// so the threshold mostly trades recovery (replay) time against
/// checkpoint frequency rather than against whole-file rewrites.
const WAL_AUTOCHECKPOINT_BYTES: u64 = 4 * 1024 * 1024;

/// *How* a relation was written since the last checkpoint — decides which
/// [`CheckpointSource`] the next checkpoint uses for it.
///
/// `Appended` promises the on-disk copy is a row-exact prefix of the
/// in-memory relation, so the checkpoint reuses the old leaf chain and
/// writes only the suffix. Any write that can break that promise
/// (re-registration, drop + create, a rebuild) must mark `Rewritten`,
/// which always wins when the two merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirtyKind {
    /// Rows were only appended; the on-disk prefix is still exact.
    Appended,
    /// The relation was (or may have been) changed beyond an append.
    Rewritten,
}

/// A cloneable handle to a shared σ-cache.
///
/// Clones share the ladder *and* the usage counters. Since
/// [`SigmaCache::probability_values`] takes `&self`, this wrapper is nothing
/// but an `Arc` — there is no lock to acquire on any path.
#[derive(Debug, Clone)]
pub struct SharedSigmaCache {
    inner: Arc<SigmaCache>,
}

impl SharedSigmaCache {
    /// Builds the underlying cache (same parameters as
    /// [`SigmaCache::build`]) and wraps it for sharing.
    pub fn build(
        min_sigma: f64,
        max_sigma: f64,
        omega: OmegaSpec,
        config: SigmaCacheConfig,
    ) -> Result<Self, CoreError> {
        Ok(SharedSigmaCache {
            inner: Arc::new(SigmaCache::build(min_sigma, max_sigma, omega, config)?),
        })
    }

    /// Wraps an already-built cache.
    pub fn from_cache(cache: SigmaCache) -> Self {
        SharedSigmaCache {
            inner: Arc::new(cache),
        }
    }

    /// The shared cache itself; [`SigmaCache`]'s whole API is available on
    /// the reference.
    pub fn cache(&self) -> &SigmaCache {
        &self.inner
    }

    /// Answers the probability value generation query (see
    /// [`SigmaCache::probability_values`]).
    pub fn probability_values(&self, r_hat: f64, sigma: f64) -> Vec<ProbabilityValue> {
        self.inner.probability_values(r_hat, sigma)
    }

    /// Aggregated usage counters across all threads, read as one snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Number of cached distributions.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the ladder is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

/// A cloneable, `Send + Sync` handle to one engine shared across threads.
///
/// The catalog (the [`Database`] of tables and views) is the only state
/// behind a lock; the builder defaults are immutable and the last-build
/// diagnostics sit behind their own small lock so they never contend with
/// queries.
#[derive(Debug, Clone)]
pub struct SharedEngine {
    catalog: Arc<RwLock<Database>>,
    defaults: ViewBuilderConfig,
    last_build: Arc<RwLock<Option<LastBuild>>>,
    /// The persistent storage engine, when this engine was opened with
    /// [`SharedEngine::open_persistent`]. `None` = purely in-memory.
    storage: Option<Arc<Storage>>,
    /// Ω-view lineage: view name → the spec it was created from, so
    /// appends to a source table know which views to maintain. Persisted
    /// as spec text in the storage meta sidecar at every checkpoint.
    lineage: Arc<Mutex<BTreeMap<String, DensityViewSpec>>>,
    /// Relations written since the last checkpoint, and *how* (append vs
    /// arbitrary rewrite). An empty map (with an empty WAL) means the
    /// on-disk file already equals the catalog, so checkpoints and
    /// evictions skip entirely; a clean relation that is already on disk
    /// is carried through a checkpoint as [`CheckpointSource::Keep`]
    /// without even being made resident.
    dirty: Arc<Mutex<BTreeMap<String, DirtyKind>>>,
}

impl Default for SharedEngine {
    fn default() -> Self {
        SharedEngine::new(ViewBuilderConfig::default())
    }
}

impl SharedEngine {
    /// Creates a shared engine with the given view-builder defaults.
    pub fn new(defaults: ViewBuilderConfig) -> Self {
        SharedEngine {
            catalog: Arc::new(RwLock::new(Database::new())),
            defaults,
            last_build: Arc::new(RwLock::new(None)),
            storage: None,
            lineage: Arc::new(Mutex::new(BTreeMap::new())),
            dirty: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Promotes a single-threaded [`Engine`] (tables, views and build
    /// diagnostics included) into a shared handle.
    pub fn from_engine(engine: Engine) -> Self {
        let (db, defaults, last_build) = engine.into_parts();
        SharedEngine {
            catalog: Arc::new(RwLock::new(db)),
            defaults,
            last_build: Arc::new(RwLock::new(last_build)),
            storage: None,
            lineage: Arc::new(Mutex::new(BTreeMap::new())),
            dirty: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Opens (creating if absent) a **persistent** engine on `dir` and
    /// runs crash recovery:
    ///
    /// 1. load every relation of the checkpointed database file into the
    ///    catalog (probabilistic views go through registration, which
    ///    rebuilds their synopses deterministically from the tuples);
    /// 2. replay the write-ahead log's committed suffix through the normal
    ///    write path — per-statement errors are ignored, because a
    ///    statement that failed deterministically before the crash fails
    ///    identically on replay and leaves the same state;
    /// 3. checkpoint immediately, so the on-disk file equals the
    ///    post-replay state before any query is served;
    /// 4. attach the storage engine as the catalog's scan source, so
    ///    evicted relations are served from disk behind the same scan leaf.
    ///
    /// Every later mutating statement is journaled to the WAL (fsync on
    /// commit) **before** it is applied in memory.
    pub fn open_persistent(dir: &Path, defaults: ViewBuilderConfig) -> Result<Self, CoreError> {
        let (storage, recovery) = Storage::open(dir, StorageOptions::default())
            .map_err(DbError::from)
            .map_err(CoreError::from)?;
        let storage = Arc::new(storage);
        let engine = SharedEngine {
            catalog: Arc::new(RwLock::new(Database::new())),
            defaults,
            last_build: Arc::new(RwLock::new(None)),
            storage: Some(Arc::clone(&storage)),
            lineage: Arc::new(Mutex::new(BTreeMap::new())),
            dirty: Arc::new(Mutex::new(BTreeMap::new())),
        };
        {
            let mut catalog = engine.catalog.write().expect("catalog lock poisoned");
            // 1. Checkpointed relations.
            for name in storage.relation_names() {
                if let Some(relation) = storage.scan(&name).map_err(DbError::from)? {
                    match relation {
                        Relation::Deterministic(t) => catalog.register_table(t)?,
                        Relation::Probabilistic(t) => catalog.register_prob_table(t)?,
                    }
                }
            }
            // 1b. Ω-view lineage from the meta sidecar, so replayed appends
            // maintain the views the checkpointed catalog already derives.
            if let Some(meta) = storage.get_meta().map_err(DbError::from)? {
                let mut lineage = engine.lineage.lock().unwrap_or_else(|e| e.into_inner());
                for line in meta.lines().map(str::trim).filter(|l| !l.is_empty()) {
                    if let Ok(Statement::CreateDensityView(spec)) = tspdb_probdb::parse(line) {
                        lineage.insert(spec.view_name.clone(), spec);
                    }
                }
            }
            // 2. WAL replay (no re-logging).
            for op in &recovery.ops {
                let _ = engine.replay_op(&mut catalog, op);
            }
            // 3. Boot checkpoint: disk == post-replay state, WAL empty.
            engine.checkpoint_locked(&mut catalog, &storage)?;
            // 4. Disk-backed scans behind the same scan leaf.
            catalog.attach_scan_source(Arc::clone(&storage) as Arc<dyn ScanSource>);
        }
        Ok(engine)
    }

    /// The persistent storage engine, if this engine has one (fault
    /// injection and cache diagnostics hang off this handle).
    pub fn storage(&self) -> Option<&Arc<Storage>> {
        self.storage.as_ref()
    }

    /// Applies one recovered journal operation without journaling it
    /// again. Errors are returned for the caller to ignore — see
    /// [`SharedEngine::open_persistent`] for why that is sound.
    fn replay_op(&self, catalog: &mut Database, op: &JournalOp) -> Result<(), CoreError> {
        match op {
            JournalOp::Sql(sql) => {
                let stmt = tspdb_probdb::parse(sql)?;
                self.apply_locked(catalog, stmt)?;
            }
            JournalOp::LoadTable { name, schema, rows } => {
                let mut table = Table::new(name.clone(), schema.clone());
                for row in rows {
                    table.insert(row.clone())?;
                }
                self.mark_dirty(std::iter::once((name.clone(), DirtyKind::Rewritten)));
                catalog.register_table(table)?;
            }
            JournalOp::AppendRows { table, rows, probs } => match probs {
                // The streaming path journals only the deterministic source
                // rows; dependent Ω-views are re-derived on replay, exactly
                // as they were derived when the batch first landed.
                None => {
                    self.apply_append(catalog, table, rows.clone())?;
                }
                Some(probs) => {
                    self.mark_dirty(std::iter::once((table.clone(), DirtyKind::Appended)));
                    catalog.append_prob_rows(table, rows.clone(), probs.clone())?;
                }
            },
        }
        Ok(())
    }

    /// Applies a statement against an exclusively borrowed catalog — the
    /// write path shared by journaled execution and WAL replay. Density
    /// views build inside the exclusive borrow here (unlike the in-memory
    /// engine's build-under-read-lock path) so the WAL's commit order and
    /// the apply order are the same order.
    fn apply_locked(
        &self,
        catalog: &mut Database,
        stmt: Statement,
    ) -> Result<QueryOutput, CoreError> {
        self.mark_dirty(statement_dirty_targets(&stmt));
        match stmt {
            Statement::CreateDensityView(spec) => {
                let (view, built) = build_density_view(catalog, self.defaults, &spec)?;
                catalog.register_prob_table(view)?;
                *self.last_build.write().expect("last-build lock poisoned") = Some(LastBuild {
                    view_name: spec.view_name.clone(),
                    built,
                });
                self.lineage
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(spec.view_name.clone(), spec);
                Ok(QueryOutput::None)
            }
            other => {
                let dropped = match &other {
                    Statement::Drop { name } => Some(name.clone()),
                    _ => None,
                };
                let out = catalog.execute_parsed(other).map_err(CoreError::from)?;
                if let Some(name) = dropped {
                    self.lineage
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&name);
                }
                Ok(out)
            }
        }
    }

    /// Writes an incremental checkpoint with the catalog exclusively
    /// borrowed, so the snapshot is consistent with the WAL floor. Each
    /// relation contributes per its [`DirtyKind`]: clean relations already
    /// on disk become [`CheckpointSource::Keep`] (no pages written, no
    /// materialization — evicted relations stay evicted), append-only
    /// dirty ones become [`CheckpointSource::Append`] (suffix leaves
    /// only), everything else is rewritten. Dirty relations are made
    /// resident first so their tuples are in hand.
    fn checkpoint_locked(
        &self,
        catalog: &mut Database,
        storage: &Storage,
    ) -> Result<(), CoreError> {
        // Clean skip: no relation was written since the last checkpoint
        // and the WAL holds no records past the floor, so the on-disk
        // file already equals the catalog — a checkpoint would only burn
        // write bandwidth.
        let dirty: BTreeMap<String, DirtyKind> =
            self.dirty.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if dirty.is_empty() && storage.wal_bytes().map_err(DbError::from)? == 0 {
            return Ok(());
        }
        let on_disk: BTreeSet<String> = storage.relation_names().into_iter().collect();
        let mut kept: Vec<String> = Vec::new();
        let mut fresh: Vec<(String, DirtyKind)> = Vec::new();
        for name in catalog.all_relation_names() {
            match dirty.get(&name) {
                None if on_disk.contains(&name) => kept.push(name),
                // Conservative: a clean relation the file has never seen
                // still needs a first write.
                None => fresh.push((name, DirtyKind::Rewritten)),
                Some(kind) => fresh.push((name, *kind)),
            }
        }
        for (name, _) in &fresh {
            catalog.ensure_resident(name)?;
        }
        let relations: Vec<(DirtyKind, Relation)> = fresh
            .iter()
            .filter_map(|(n, k)| catalog.relation(n).cloned().map(|r| (*k, r)))
            .collect();
        let sources: Vec<CheckpointSource> = kept
            .iter()
            .map(|n| CheckpointSource::Keep(n.as_str()))
            .chain(relations.iter().map(|(kind, relation)| match kind {
                DirtyKind::Appended => CheckpointSource::Append(relation),
                DirtyKind::Rewritten => CheckpointSource::Rewrite(relation),
            }))
            .collect();
        storage
            .checkpoint_incremental(&sources)
            .map_err(DbError::from)
            .map_err(CoreError::from)?;
        // Persist Ω-view lineage alongside the checkpoint so a reopened
        // engine keeps maintaining the same views under replayed appends.
        let meta = {
            let lineage = self.lineage.lock().unwrap_or_else(|e| e.into_inner());
            lineage
                .values()
                .map(|spec| spec.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        storage.put_meta(&meta).map_err(DbError::from)?;
        self.dirty.lock().unwrap_or_else(|e| e.into_inner()).clear();
        Ok(())
    }

    /// Forces a checkpoint now: rewrites the database file from the
    /// current catalog, truncates the WAL. No-op error when the engine is
    /// not persistent.
    pub fn checkpoint(&self) -> Result<(), CoreError> {
        let storage = self.storage.as_ref().ok_or_else(|| {
            CoreError::Db(DbError::Storage("engine has no data directory".into()))
        })?;
        let mut catalog = self.catalog.write().expect("catalog lock poisoned");
        self.checkpoint_locked(&mut catalog, storage)
    }

    /// Checkpoints, then drops the named relation's tuples from memory
    /// while keeping its synopses; subsequent scans are served from disk
    /// through the page cache — with bit-identical query results, which is
    /// what the persistence differential tests pin down.
    ///
    /// A relation that has seen no writes since the last checkpoint (its
    /// on-disk copy is already current) skips the checkpoint rewrite and
    /// is evicted directly.
    pub fn evict_to_disk(&self, name: &str) -> Result<(), CoreError> {
        let storage = self.storage.as_ref().ok_or_else(|| {
            CoreError::Db(DbError::Storage("engine has no data directory".into()))
        })?;
        let mut catalog = self.catalog.write().expect("catalog lock poisoned");
        let clean = !self
            .dirty
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(name)
            && storage.relation_names().iter().any(|n| n == name);
        if !clean {
            self.checkpoint_locked(&mut catalog, storage)?;
        }
        catalog.evict_relation(name)?;
        Ok(())
    }

    /// Read access to the catalog. Holding the guard blocks writers (not
    /// readers); drop it promptly.
    pub fn read(&self) -> RwLockReadGuard<'_, Database> {
        self.catalog.read().expect("catalog lock poisoned")
    }

    /// Runs a read-only statement (`SELECT`) under the shared read lock.
    /// Any number of threads can be inside this call at once.
    pub fn query(&self, sql: &str) -> Result<QueryOutput, CoreError> {
        self.read().query(sql).map_err(CoreError::from)
    }

    /// [`SharedEngine::query`] through the catalog's shared plan cache:
    /// hot statements skip parse+plan across *all* sessions. Semantics
    /// are identical to [`SharedEngine::query`] — DDL bumps the catalog
    /// generation, which invalidates cached plans (tuple-only appends
    /// bump a separate data generation and leave plans standing).
    ///
    /// This is the MVCC read path: the read lock is held only long enough
    /// to resolve the plan and clone an immutable [`RelationSnapshot`]
    /// (`Arc`s of the relation rung, synopses and shard layout); the
    /// query then executes entirely outside the lock while appends land
    /// new rungs next to it.
    ///
    /// [`RelationSnapshot`]: tspdb_probdb::RelationSnapshot
    pub fn query_cached(&self, sql: &str) -> Result<QueryOutput, CoreError> {
        let (planned, snap, threads) = {
            let catalog = self.read();
            let planned = match catalog.cached_plan(sql) {
                Some(planned) => planned,
                None => match tspdb_probdb::parse(sql)? {
                    Statement::Select(sel) => catalog.plan_select_cached(sql, &sel)?,
                    Statement::Explain(sel) => {
                        return catalog.explain_select(&sel).map_err(CoreError::from)
                    }
                    other => return Err(CoreError::Db(DbError::ReadOnly(format!("{other:?}")))),
                },
            };
            let snap = catalog.snapshot(&planned.physical.table)?;
            (planned, snap, catalog.worlds_threads())
        };
        planned
            .strategy_with_context(threads, snap.synopses, snap.shards)
            .execute(&snap.relation, &planned.physical)
            .map_err(CoreError::from)
    }

    /// Plans and executes one already-parsed `SELECT` against an immutable
    /// relation snapshot, holding the read lock only for plan + snapshot —
    /// the entry point standing (TAIL) queries re-run on every emission
    /// without ever blocking the write path mid-scan.
    pub fn query_select_snapshot(&self, sel: &SelectStmt) -> Result<QueryOutput, CoreError> {
        let (planned, snap, threads) = {
            let catalog = self.read();
            let planned = Planner::plan(sel).map_err(CoreError::from)?;
            let snap = catalog.snapshot(&planned.physical.table)?;
            (planned, snap, catalog.worlds_threads())
        };
        planned
            .strategy_with_context(threads, snap.synopses, snap.shards)
            .execute(&snap.relation, &planned.physical)
            .map_err(CoreError::from)
    }

    /// The catalog generation (bumped by every DDL/write; keys the plan
    /// cache).
    pub fn catalog_generation(&self) -> u64 {
        self.read().generation()
    }

    /// The catalog's *data* generation — bumped by every tuple-only write
    /// (`INSERT`, streaming appends). TAIL polling uses this as its cheap
    /// "anything new?" check before re-running a standing query.
    pub fn data_generation(&self) -> u64 {
        self.read().data_generation()
    }

    /// Plan-cache effectiveness counters, for diagnostics and benches.
    pub fn plan_cache_stats(&self) -> tspdb_probdb::PlanCacheStats {
        self.read().plan_cache_stats()
    }

    /// Executes any SQL statement.
    ///
    /// * `SELECT` / `EXPLAIN` — read lock, concurrent with other readers.
    /// * `CREATE VIEW … AS DENSITY` — the view is **built under the read
    ///   lock** (inference only reads the source table), then registered
    ///   under a brief write lock, so long builds do not starve queries.
    ///   The build therefore works on a *snapshot*: if a writer replaces
    ///   the source table in the gap, the registered view still reflects
    ///   the data that was visible when the build began. Registration and
    ///   the last-build diagnostics are updated inside one write-lock
    ///   critical section, so `last_build()` always names the view
    ///   registered last.
    /// * Everything else — write lock.
    pub fn execute(&self, sql: &str) -> Result<QueryOutput, CoreError> {
        let stmt = tspdb_probdb::parse(sql)?;
        self.execute_journaled(Some(sql), stmt)
    }

    /// [`SharedEngine::execute`] for an already-parsed statement — the
    /// parse-free entry point for callers that classified the statement
    /// themselves. Lock discipline is identical to `execute`.
    ///
    /// On a **persistent** engine, mutating statements are rejected here:
    /// the journal records original SQL text, so persistent writers must
    /// supply it via [`SharedEngine::execute_sql_statement`] (or
    /// [`SharedEngine::execute`]).
    pub fn execute_statement(
        &self,
        stmt: tspdb_probdb::Statement,
    ) -> Result<QueryOutput, CoreError> {
        self.execute_journaled(None, stmt)
    }

    /// [`SharedEngine::execute_statement`] with the statement's original
    /// SQL text alongside the parsed form — the entry point the wire
    /// server uses, avoiding a re-parse while keeping the journal able to
    /// record the text.
    pub fn execute_sql_statement(
        &self,
        sql: &str,
        stmt: tspdb_probdb::Statement,
    ) -> Result<QueryOutput, CoreError> {
        self.execute_journaled(Some(sql), stmt)
    }

    /// The write path behind every `execute*` variant. In-memory engines
    /// keep the original lock discipline (density views build under the
    /// read lock). Persistent engines serialise mutating statements under
    /// the write lock and journal them **before** applying: append + fsync
    /// to the WAL first, then apply in memory — the redo-log ordering that
    /// makes the committed prefix recoverable. Holding the write lock
    /// across both steps keeps WAL order and apply order identical, which
    /// replay depends on.
    fn execute_journaled(
        &self,
        sql: Option<&str>,
        stmt: tspdb_probdb::Statement,
    ) -> Result<QueryOutput, CoreError> {
        // TAIL registers a continuous query; there is no one-shot answer
        // to produce and nothing to redo on recovery. Reject it *before*
        // the journaling branch so the statement never reaches the WAL.
        if matches!(stmt, Statement::Tail(_)) {
            return Err(CoreError::Db(DbError::Unsupported(
                "TAIL is a continuous query; submit it over the server wire protocol".into(),
            )));
        }
        let mutating = !matches!(stmt, Statement::Select(_) | Statement::Explain(_));
        if let (Some(storage), true) = (&self.storage, mutating) {
            let Some(sql) = sql else {
                return Err(CoreError::Db(DbError::Storage(
                    "persistent engines journal original SQL text; \
                     use execute() or execute_sql_statement()"
                        .into(),
                )));
            };
            let mut catalog = self.catalog.write().expect("catalog lock poisoned");
            storage
                .log(&JournalOp::Sql(sql.to_string()))
                .map_err(DbError::from)?;
            let out = self.apply_locked(&mut catalog, stmt)?;
            if storage.wal_bytes().map_err(DbError::from)? >= WAL_AUTOCHECKPOINT_BYTES {
                self.checkpoint_locked(&mut catalog, storage)?;
            }
            return Ok(out);
        }
        match stmt {
            tspdb_probdb::Statement::CreateDensityView(spec) => {
                let (view, built) = build_density_view(&self.read(), self.defaults, &spec)?;
                {
                    // Lock order: catalog before last_build (the only place
                    // both are held at once).
                    let mut catalog = self.catalog.write().expect("catalog lock poisoned");
                    catalog.register_prob_table(view)?;
                    *self.last_build.write().expect("last-build lock poisoned") = Some(LastBuild {
                        view_name: spec.view_name.clone(),
                        built,
                    });
                }
                self.lineage
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(spec.view_name.clone(), spec);
                Ok(QueryOutput::None)
            }
            tspdb_probdb::Statement::Select(sel) => {
                self.read().query_select(&sel).map_err(CoreError::from)
            }
            tspdb_probdb::Statement::Explain(sel) => {
                self.read().explain_select(&sel).map_err(CoreError::from)
            }
            other => {
                let dropped = match &other {
                    Statement::Drop { name } => Some(name.clone()),
                    _ => None,
                };
                let out = self
                    .catalog
                    .write()
                    .expect("catalog lock poisoned")
                    .execute_parsed(other)
                    .map_err(CoreError::from)?;
                if let Some(name) = dropped {
                    self.lineage
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&name);
                }
                Ok(out)
            }
        }
    }

    /// Appends `rows` to one deterministic table — a single-batch
    /// [`SharedEngine::append_batches`].
    pub fn append_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize, CoreError> {
        self.append_batches(vec![(table.to_string(), rows)])
    }

    /// The streaming-ingestion write path: lands a whole flush of
    /// per-relation row batches in one **group commit**.
    ///
    /// On a persistent engine, every batch is encoded as one
    /// [`JournalOp::AppendRows`] record and the whole flush hits the WAL
    /// with a *single* fsync — durability cost is amortized over every row
    /// in the flush instead of paid per statement. The batches are then
    /// applied in order under one write lock; each one validates its rows
    /// atomically, swaps a fresh relation rung in (snapshot readers keep
    /// the old rung), bumps only the *data* generation (cached plans
    /// survive) and maintains any Ω-views derived from the table.
    ///
    /// A batch that fails validation is skipped — later batches still
    /// apply, mirroring WAL replay (which ignores per-op errors because
    /// deterministic failures repeat identically) — and the first error is
    /// returned. Returns the number of rows appended.
    pub fn append_batches(
        &self,
        batches: Vec<(String, Vec<Vec<Value>>)>,
    ) -> Result<usize, CoreError> {
        if batches.is_empty() {
            return Ok(0);
        }
        let mut catalog = self.catalog.write().expect("catalog lock poisoned");
        if let Some(storage) = &self.storage {
            let ops: Vec<JournalOp> = batches
                .iter()
                .map(|(table, rows)| JournalOp::AppendRows {
                    table: table.clone(),
                    rows: rows.clone(),
                    probs: None,
                })
                .collect();
            storage.log_batch(&ops).map_err(DbError::from)?;
        }
        let mut appended = 0usize;
        let mut first_err: Option<CoreError> = None;
        for (table, rows) in batches {
            match self.apply_append(&mut catalog, &table, rows) {
                Ok(n) => appended += n,
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(storage) = &self.storage {
            if storage.wal_bytes().map_err(DbError::from)? >= WAL_AUTOCHECKPOINT_BYTES {
                self.checkpoint_locked(&mut catalog, storage)?;
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(appended),
        }
    }

    /// Applies one already-journaled append batch: source rows in, dirty
    /// bookkeeping, then maintenance of every dependent Ω-view.
    fn apply_append(
        &self,
        catalog: &mut Database,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<usize, CoreError> {
        let appended = catalog.append_rows(table, rows)?;
        self.mark_dirty(std::iter::once((table.to_string(), DirtyKind::Appended)));
        self.maintain_dependent_views(catalog, table, appended)?;
        Ok(appended)
    }

    /// Brings every Ω-view derived from `source` up to date after
    /// `appended` fresh source rows.
    ///
    /// When the new rows form a strict suffix in time (every new timestamp
    /// greater than every old one) **and** densities are evaluated
    /// directly (`defaults.cache == None`), the builder re-runs over just
    /// the new interval and the produced tuples are *appended* to the
    /// view. That is bit-identical to a full rebuild: per-window density
    /// inference is stateless, the builder walks the series in time order,
    /// and the view's synopses absorb the suffix through the same stable
    /// merge a rebuild would sort through. A σ-cache build quantizes
    /// against the σ̂ range of the *whole* view, so with a cache configured
    /// — or on backfill — maintenance falls back to the full rebuild
    /// (which bumps the DDL generation like any re-registration).
    fn maintain_dependent_views(
        &self,
        catalog: &mut Database,
        source: &str,
        appended: usize,
    ) -> Result<(), CoreError> {
        if appended == 0 {
            return Ok(());
        }
        let specs: Vec<DensityViewSpec> = {
            let lineage = self.lineage.lock().unwrap_or_else(|e| e.into_inner());
            lineage
                .values()
                .filter(|spec| spec.source_table == source)
                .cloned()
                .collect()
        };
        for spec in specs {
            let floor = monotone_suffix_floor(catalog, &spec, appended)?;
            let kind = match floor {
                Some(floor) if self.defaults.cache.is_none() => {
                    let mut suffix = spec.clone();
                    suffix.predicate.push(Comparison::new(
                        spec.time_column.clone(),
                        CmpOp::Gt,
                        Value::Int(floor),
                    ));
                    let (view, _) = build_density_view(catalog, self.defaults, &suffix)?;
                    let rows = view.rows().to_vec();
                    let probs = view.probs().to_vec();
                    catalog.append_prob_rows(&spec.view_name, rows, probs)?;
                    DirtyKind::Appended
                }
                _ => {
                    let (view, _) = build_density_view(catalog, self.defaults, &spec)?;
                    catalog.register_prob_table(view)?;
                    DirtyKind::Rewritten
                }
            };
            self.mark_dirty(std::iter::once((spec.view_name.clone(), kind)));
        }
        Ok(())
    }

    /// Records relations written since the last checkpoint.
    /// [`DirtyKind::Rewritten`] always wins a merge: an append after a
    /// rewrite still leaves the on-disk prefix stale, so the relation must
    /// stay on the full-rewrite path until a checkpoint clears it.
    fn mark_dirty<I: IntoIterator<Item = (String, DirtyKind)>>(&self, names: I) {
        let mut dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
        for (name, kind) in names {
            dirty
                .entry(name)
                .and_modify(|existing| {
                    if kind == DirtyKind::Rewritten {
                        *existing = DirtyKind::Rewritten;
                    }
                })
                .or_insert(kind);
        }
    }

    /// Loads a time series as a `(t INT, <value_col> FLOAT)` table (write
    /// lock; see [`Engine::load_series`]).
    pub fn load_series(
        &self,
        table_name: &str,
        value_column: &str,
        series: &TimeSeries,
    ) -> Result<(), CoreError> {
        let table = series_to_table(table_name, value_column, series)?;
        let mut catalog = self.catalog.write().expect("catalog lock poisoned");
        if let Some(storage) = &self.storage {
            // No SQL text exists for a programmatic load, so the journal
            // records the finished table itself (schema + rows, floats as
            // bit patterns) — replay re-registers it verbatim.
            storage
                .log(&JournalOp::LoadTable {
                    name: table.name().to_string(),
                    schema: table.schema().clone(),
                    rows: table.rows().to_vec(),
                })
                .map_err(DbError::from)?;
            self.mark_dirty(std::iter::once((
                table.name().to_string(),
                DirtyKind::Rewritten,
            )));
        }
        catalog.register_table(table)?;
        Ok(())
    }

    /// Diagnostics of the most recent density-view build on this shared
    /// engine (cloned out so no lock is held by the caller).
    pub fn last_build(&self) -> Option<LastBuild> {
        self.last_build
            .read()
            .expect("last-build lock poisoned")
            .clone()
    }

    /// Sets the fork-join width for `SELECT … WITH WORLDS` queries (`0` =
    /// one thread per core). The knob is an atomic on the catalog's read
    /// path, so tuning it takes only the *read* lock and never blocks
    /// concurrent queries; the Monte-Carlo queries themselves also run
    /// under the read lock like every other `SELECT`. The width never
    /// changes MC estimates, only their latency.
    pub fn set_worlds_threads(&self, threads: usize) {
        self.read().set_worlds_threads(threads);
    }
}

/// The relations a mutating statement writes — what the dirty tracker
/// records before the statement applies. Conservative by construction:
/// marking too much (or as [`DirtyKind::Rewritten`] when an append would
/// do) only costs checkpoint pages, marking too little would lose data on
/// a skipped one, so the match is exhaustive and any new mutating variant
/// must name its targets here. Only `INSERT` qualifies as append-only;
/// everything else replaces the relation wholesale.
fn statement_dirty_targets(stmt: &Statement) -> Vec<(String, DirtyKind)> {
    match stmt {
        Statement::CreateTable { name, .. } | Statement::Drop { name } => {
            vec![(name.clone(), DirtyKind::Rewritten)]
        }
        Statement::Insert { table, .. } => vec![(table.clone(), DirtyKind::Appended)],
        Statement::CreateDensityView(spec) => vec![(spec.view_name.clone(), DirtyKind::Rewritten)],
        Statement::Select(_) | Statement::Explain(_) | Statement::Tail(_) => vec![],
    }
}

/// If the `appended` newest rows of a view's source table all carry
/// timestamps strictly greater than every pre-existing one, returns that
/// old maximum — the time floor the incremental suffix build starts
/// after. `None` (history empty, a backfilled timestamp, or a non-integer
/// time cell) sends maintenance down the full-rebuild path.
fn monotone_suffix_floor(
    catalog: &Database,
    spec: &DensityViewSpec,
    appended: usize,
) -> Result<Option<i64>, CoreError> {
    let table = catalog.table(&spec.source_table).map_err(CoreError::from)?;
    let Ok(t_idx) = table.schema().index_of(&spec.time_column) else {
        return Ok(None);
    };
    let rows = table.rows();
    let old_len = rows.len().saturating_sub(appended);
    if old_len == 0 {
        return Ok(None);
    }
    let mut old_max = i64::MIN;
    for row in &rows[..old_len] {
        match row[t_idx].as_i64() {
            Some(t) => old_max = old_max.max(t),
            None => return Ok(None),
        }
    }
    for row in &rows[old_len..] {
        match row[t_idx].as_i64() {
            Some(t) if t > old_max => {}
            _ => return Ok(None),
        }
    }
    Ok(Some(old_max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricConfig;
    use crate::sigma_cache::direct_probability_values;
    use tspdb_timeseries::generate::TemperatureGenerator;

    fn shared() -> SharedSigmaCache {
        SharedSigmaCache::build(
            0.1,
            10.0,
            OmegaSpec::new(0.1, 20).unwrap(),
            SigmaCacheConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn concurrent_queries_agree_with_direct_evaluation() {
        let cache = shared();
        let omega = OmegaSpec::new(0.1, 20).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let sigma = 0.1 + (worker * 200 + i) as f64 * 0.006;
                        let got = cache.probability_values(5.0, sigma);
                        let want = direct_probability_values(5.0, sigma, &omega);
                        for (g, w) in got.iter().zip(&want) {
                            assert!(
                                (g.rho - w.rho).abs() < 0.05,
                                "worker {worker}: σ {sigma} mismatch"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
        assert_eq!(stats.misses, 0, "all sigmas were in range");
    }

    #[test]
    fn clones_share_state() {
        let cache = shared();
        let clone = cache.clone();
        clone.probability_values(0.0, 1.0);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), clone.len());
        assert!(!cache.is_empty());
        assert!(cache.memory_bytes() > 0);
    }

    fn shared_engine_with_view() -> SharedEngine {
        let engine = SharedEngine::new(ViewBuilderConfig {
            window: 60,
            metric_config: MetricConfig {
                p: 1,
                ..MetricConfig::default()
            },
            ..ViewBuilderConfig::default()
        });
        let series = TemperatureGenerator::default().generate(150);
        engine.load_series("raw_values", "r", &series).unwrap();
        engine
            .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        engine
    }

    #[test]
    fn shared_engine_plan_cache_is_shared_and_generation_invalidated() {
        let engine = shared_engine_with_view();
        let sql = "SELECT * FROM pv WHERE prob >= 0.1";
        let baseline = engine.query(sql).unwrap();
        // Warm the cache once (one miss), then concurrent "sessions" all
        // run the same hot statement: every one of them hits.
        assert_eq!(engine.query_cached(sql).unwrap(), baseline);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..4 {
                        assert_eq!(engine.query_cached(sql).unwrap(), baseline);
                    }
                });
            }
        });
        let stats = engine.plan_cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 32, "{stats:?}");
        // A write bumps the generation and invalidates the cached plan,
        // but answers stay correct (and reflect the write).
        let g = engine.catalog_generation();
        engine.execute("CREATE TABLE extra (k INT)").unwrap();
        assert!(engine.catalog_generation() > g);
        assert_eq!(engine.query_cached(sql).unwrap(), baseline);
        let stats = engine.plan_cache_stats();
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert_eq!(stats.invalidations, 1, "{stats:?}");
    }

    #[test]
    fn shared_engine_serves_selects_from_many_threads() {
        let engine = shared_engine_with_view();
        let expected = engine
            .query("SELECT * FROM pv WHERE prob >= 0.1")
            .unwrap()
            .prob_rows()
            .unwrap()
            .len();
        assert!(expected > 0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let engine = engine.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        let got = engine
                            .query("SELECT * FROM pv WHERE prob >= 0.1")
                            .unwrap()
                            .prob_rows()
                            .unwrap()
                            .len();
                        assert_eq!(got, expected);
                    }
                });
            }
        });
    }

    #[test]
    fn shared_engine_runs_mc_selects_concurrently_and_identically() {
        let engine = shared_engine_with_view();
        engine.set_worlds_threads(2);
        const MC_SQL: &str = "SELECT * FROM pv WITH WORLDS 2000 SEED 21";
        let expected = engine
            .query(MC_SQL)
            .unwrap()
            .worlds()
            .unwrap()
            .fingerprint();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let engine = engine.clone();
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..5 {
                        let got = engine.query(MC_SQL).unwrap();
                        assert_eq!(&got.worlds().unwrap().fingerprint(), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn shared_engine_serves_aggregates_and_explain_under_the_read_lock() {
        let engine = shared_engine_with_view();
        engine.set_worlds_threads(2);
        const AGG_SQL: &str =
            "SELECT t, COUNT(*), SUM(lambda) FROM pv GROUP BY t HAVING COUNT(*) >= 2 \
             WITH WORLDS 1000 SEED 13";
        let expected = engine
            .query(AGG_SQL)
            .unwrap()
            .aggregate()
            .unwrap()
            .fingerprint();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let engine = engine.clone();
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..3 {
                        let got = engine.query(AGG_SQL).unwrap();
                        assert_eq!(&got.aggregate().unwrap().fingerprint(), expected);
                        let report = engine.query(&format!("EXPLAIN {AGG_SQL}")).unwrap();
                        let report = report.explain().unwrap();
                        assert!(report.strategy.contains("worlds"));
                    }
                });
            }
        });
    }

    #[test]
    fn shared_engine_mixes_reads_and_writes() {
        let engine = shared_engine_with_view();
        std::thread::scope(|s| {
            let reader = engine.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    let out = reader.query("SELECT * FROM pv LIMIT 5").unwrap();
                    assert_eq!(out.prob_rows().unwrap().len(), 5);
                }
            });
            let writer = engine.clone();
            s.spawn(move || {
                writer.execute("CREATE TABLE scratch (x INT)").unwrap();
                writer
                    .execute("INSERT INTO scratch VALUES (1), (2)")
                    .unwrap();
            });
        });
        let out = engine.query("SELECT * FROM scratch").unwrap();
        assert_eq!(out.rows().unwrap().len(), 2);
    }

    #[test]
    fn shared_engine_from_engine_preserves_state() {
        let mut e = Engine::new(ViewBuilderConfig {
            window: 60,
            metric_config: MetricConfig {
                p: 1,
                ..MetricConfig::default()
            },
            ..ViewBuilderConfig::default()
        });
        let series = TemperatureGenerator::default().generate(150);
        e.load_series("raw_values", "r", &series).unwrap();
        e.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        let rows_before = e
            .query("SELECT * FROM pv")
            .unwrap()
            .prob_rows()
            .unwrap()
            .len();

        let shared = SharedEngine::from_engine(e);
        let rows_after = shared
            .query("SELECT * FROM pv")
            .unwrap()
            .prob_rows()
            .unwrap()
            .len();
        assert_eq!(rows_before, rows_after);
        assert_eq!(shared.last_build().unwrap().view_name, "pv");
        assert!(shared.read().prob_table("pv").is_ok());
    }

    /// Self-cleaning temp dir for the persistent-engine tests (no
    /// external crates in the offline build).
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "tspdb-concurrent-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Deterministic synthetic series: strictly increasing integer times,
    /// smooth values — the shape the ingest subsystem streams.
    fn synthetic_rows(range: std::ops::Range<i64>) -> Vec<Vec<tspdb_probdb::Value>> {
        use tspdb_probdb::Value;
        range
            .map(|t| {
                let v = 20.0 + 3.0 * ((t as f64) * 0.21).sin() + 0.01 * (t % 7) as f64;
                vec![Value::Int(t), Value::Float(v)]
            })
            .collect()
    }

    /// A config whose densities are evaluated directly (no σ-cache) —
    /// the mode whose incremental maintenance is bit-identical.
    fn direct_config() -> ViewBuilderConfig {
        ViewBuilderConfig {
            window: 30,
            metric_config: MetricConfig {
                p: 1,
                q: 0,
                ..MetricConfig::default()
            },
            cache: None,
            threads: 1,
            ..ViewBuilderConfig::default()
        }
    }

    fn engine_with_rows(config: ViewBuilderConfig, upto: i64) -> SharedEngine {
        let engine = SharedEngine::new(config);
        engine
            .execute("CREATE TABLE raw_values (t INT, r FLOAT)")
            .unwrap();
        engine
            .append_rows("raw_values", synthetic_rows(0..upto))
            .unwrap();
        engine
            .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        engine
    }

    #[test]
    fn monotone_appends_maintain_views_incrementally_and_bit_identically() {
        // Incremental: view created over 100 rows, then three streamed
        // suffix batches. Scratch twin: all 130 rows first, view built once.
        let engine = engine_with_rows(direct_config(), 100);
        let ddl_gen = engine.catalog_generation();
        let data_gen = engine.data_generation();
        engine
            .append_rows("raw_values", synthetic_rows(100..110))
            .unwrap();
        engine
            .append_rows("raw_values", synthetic_rows(110..111))
            .unwrap();
        engine
            .append_rows("raw_values", synthetic_rows(111..130))
            .unwrap();
        assert_eq!(
            engine.catalog_generation(),
            ddl_gen,
            "suffix maintenance must not re-register the view (DDL generation moved)"
        );
        assert!(engine.data_generation() > data_gen);

        let twin = engine_with_rows(direct_config(), 130);
        let sql = "SELECT * FROM pv";
        assert_eq!(engine.query(sql).unwrap(), twin.query(sql).unwrap());
        // Synopses absorbed the suffix through the stable merge: equal to
        // the rebuild's from-scratch sort, retained runs included.
        let (a, b) = (
            engine.read().synopses("pv").unwrap(),
            twin.read().synopses("pv").unwrap(),
        );
        assert_eq!(*a, *b);
        // And derived answers agree across every strategy surface.
        let agg = "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 16)";
        assert_eq!(engine.query(agg).unwrap(), twin.query(agg).unwrap());
    }

    #[test]
    fn backfill_appends_fall_back_to_a_full_rebuild() {
        let engine2 = engine_with_rows(direct_config(), 100);
        let ddl_gen = engine2.catalog_generation();
        // New rows strictly *before* existing history: not a suffix.
        engine2
            .append_rows("raw_values", synthetic_rows(-20..0))
            .unwrap();
        assert!(
            engine2.catalog_generation() > ddl_gen,
            "backfill must take the rebuild path (re-registration bumps DDL generation)"
        );
        let twin = SharedEngine::new(direct_config());
        twin.execute("CREATE TABLE raw_values (t INT, r FLOAT)")
            .unwrap();
        let mut all = synthetic_rows(0..100);
        all.extend(synthetic_rows(-20..0));
        twin.append_rows("raw_values", all).unwrap();
        twin.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        let sql = "SELECT * FROM pv";
        assert_eq!(engine2.query(sql).unwrap(), twin.query(sql).unwrap());
    }

    #[test]
    fn append_batches_group_commits_with_one_fsync_and_recovers() {
        let dir = TempDir::new();
        let engine = SharedEngine::open_persistent(&dir.0, direct_config()).unwrap();
        engine.execute("CREATE TABLE kv (k INT, v FLOAT)").unwrap();
        let storage = Arc::clone(engine.storage().unwrap());
        let before = storage.wal_fsyncs();
        // Three relations' batches in one flush: one WAL fsync total.
        engine
            .append_batches(vec![
                ("kv".into(), synthetic_rows(0..40)),
                ("kv".into(), synthetic_rows(40..64)),
                ("kv".into(), synthetic_rows(64..100)),
            ])
            .unwrap();
        assert_eq!(storage.wal_fsyncs(), before + 1, "group commit = one fsync");
        assert_eq!(
            engine
                .query("SELECT * FROM kv")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            100
        );
        drop(engine);
        // The batch is redo-logged: a reopen replays it verbatim.
        let reopened = SharedEngine::open_persistent(&dir.0, direct_config()).unwrap();
        assert_eq!(
            reopened
                .query("SELECT * FROM kv")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            100
        );
    }

    #[test]
    fn append_batch_errors_skip_the_batch_but_keep_later_ones() {
        use tspdb_probdb::Value;
        let engine = SharedEngine::new(direct_config());
        engine.execute("CREATE TABLE kv (k INT, v FLOAT)").unwrap();
        let err = engine
            .append_batches(vec![
                ("kv".into(), synthetic_rows(0..3)),
                // Arity mismatch rejects this whole batch atomically…
                ("kv".into(), vec![vec![Value::Int(9)]]),
                // …while later batches still land (mirrors WAL replay).
                ("kv".into(), synthetic_rows(3..5)),
            ])
            .unwrap_err();
        assert!(format!("{err}").contains("arity") || format!("{err:?}").contains("Arity"));
        assert_eq!(
            engine
                .query("SELECT * FROM kv")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            5
        );
    }

    #[test]
    fn tail_statements_are_rejected_before_the_journal() {
        let dir = TempDir::new();
        let engine = SharedEngine::open_persistent(&dir.0, direct_config()).unwrap();
        engine.execute("CREATE TABLE kv (k INT, v FLOAT)").unwrap();
        let storage = Arc::clone(engine.storage().unwrap());
        let wal_before = storage.wal_bytes().unwrap();
        let err = engine
            .execute("TAIL SELECT COUNT(*) FROM kv GROUP BY WINDOW(k, 10)")
            .unwrap_err();
        assert!(format!("{err}").contains("continuous query"), "{err}");
        assert_eq!(
            storage.wal_bytes().unwrap(),
            wal_before,
            "a rejected TAIL must never reach the WAL"
        );
    }

    #[test]
    fn clean_engines_skip_checkpoint_rewrites() {
        let dir = TempDir::new();
        let engine = SharedEngine::open_persistent(&dir.0, direct_config()).unwrap();
        engine.execute("CREATE TABLE kv (k INT, v FLOAT)").unwrap();
        engine.append_rows("kv", synthetic_rows(0..10)).unwrap();
        engine.checkpoint().unwrap();
        let db_file = dir.0.join(tspdb_storage::DB_FILE);
        let written = std::fs::metadata(&db_file).unwrap().modified().unwrap();
        // Nothing changed since: the rewrite is skipped wholesale.
        engine.checkpoint().unwrap();
        assert_eq!(
            std::fs::metadata(&db_file).unwrap().modified().unwrap(),
            written,
            "clean checkpoint rewrote the database file"
        );
        // Evicting a clean relation also skips the rewrite, and disk
        // still serves the current tuples.
        engine.evict_to_disk("kv").unwrap();
        assert_eq!(
            std::fs::metadata(&db_file).unwrap().modified().unwrap(),
            written
        );
        assert_eq!(
            engine
                .query("SELECT * FROM kv")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            10
        );
        // A new append re-dirties: the next checkpoint writes again.
        engine.append_rows("kv", synthetic_rows(10..12)).unwrap();
        engine.checkpoint().unwrap();
        assert_ne!(
            std::fs::metadata(&db_file).unwrap().modified().unwrap(),
            written,
            "dirty checkpoint must rewrite the database file"
        );
    }

    #[test]
    fn view_maintenance_survives_restart_via_the_lineage_sidecar() {
        let dir = TempDir::new();
        {
            let engine = SharedEngine::open_persistent(&dir.0, direct_config()).unwrap();
            engine
                .execute("CREATE TABLE raw_values (t INT, r FLOAT)")
                .unwrap();
            engine
                .append_rows("raw_values", synthetic_rows(0..60))
                .unwrap();
            engine
                .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
                .unwrap();
            engine.checkpoint().unwrap();
        }
        // The reopened engine only knows pv through the meta sidecar (the
        // CREATE VIEW is below the checkpoint floor, so replay never sees
        // it) — streamed appends must still maintain the view.
        let engine = SharedEngine::open_persistent(&dir.0, direct_config()).unwrap();
        engine
            .append_rows("raw_values", synthetic_rows(60..90))
            .unwrap();
        let twin = engine_with_rows(direct_config(), 90);
        let sql = "SELECT * FROM pv";
        assert_eq!(engine.query(sql).unwrap(), twin.query(sql).unwrap());
        // And the maintained state is what a crash recovery reproduces.
        drop(engine);
        let reopened = SharedEngine::open_persistent(&dir.0, direct_config()).unwrap();
        assert_eq!(reopened.query(sql).unwrap(), twin.query(sql).unwrap());
    }

    #[test]
    fn snapshot_reads_keep_serving_while_appends_land() {
        let engine = engine_with_rows(direct_config(), 60);
        let sql = "SELECT * FROM pv WHERE prob >= 0.0";
        let start = engine.query_cached(sql).unwrap().prob_rows().unwrap().len();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reader = engine.clone();
                s.spawn(move || {
                    let mut last = start;
                    for _ in 0..40 {
                        let n = reader.query_cached(sql).unwrap().prob_rows().unwrap().len();
                        // Monotone stream + MVCC snapshots: row counts only grow.
                        assert!(n >= last, "snapshot went backwards: {n} < {last}");
                        last = n;
                    }
                });
            }
            let writer = engine.clone();
            s.spawn(move || {
                for t in 60..110 {
                    writer
                        .append_rows("raw_values", synthetic_rows(t..t + 1))
                        .unwrap();
                }
            });
        });
        let end = engine.query_cached(sql).unwrap().prob_rows().unwrap().len();
        assert!(end > start);
        // The whole stream of appends kept every cached plan standing.
        let stats = engine.plan_cache_stats();
        assert_eq!(stats.invalidations, 0, "{stats:?}");
    }

    #[test]
    fn shared_engine_rebuilds_views_concurrently_with_reads() {
        let engine = shared_engine_with_view();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reader = engine.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        reader.query("SELECT * FROM pv LIMIT 1").unwrap();
                    }
                });
            }
            let builder = engine.clone();
            s.spawn(move || {
                builder
                    .execute(
                        "CREATE VIEW pv2 AS DENSITY r OVER t OMEGA delta=0.5, n=4 \
                         FROM raw_values",
                    )
                    .unwrap();
            });
        });
        assert_eq!(engine.last_build().unwrap().view_name, "pv2");
        assert!(engine.read().prob_table("pv2").is_ok());
    }
}
