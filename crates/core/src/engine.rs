//! The end-to-end engine: SQL in, probabilistic views out.
//!
//! [`Engine`] glues the substrate together: it owns a
//! [`tspdb_probdb::Database`], loads time series as `raw_values`-style
//! tables, and executes the paper's SQL-like statements — including the
//! Fig. 7 `CREATE VIEW … AS DENSITY …` query, which it fulfils with the
//! [`OmegaViewBuilder`]. This is the "offline mode" of the framework; the
//! "online mode" lives in [`crate::online`].

use crate::builder::{BuiltView, OmegaViewBuilder, ViewBuilderConfig};
use crate::error::CoreError;
use crate::metrics::MetricKind;
use crate::omega::OmegaSpec;
use tspdb_probdb::{
    CmpOp, ColumnType, Conjunction, Database, DbError, DensityViewSpec, ProbTable, QueryOutput,
    Schema, Table, Value,
};
use tspdb_timeseries::TimeSeries;

/// Build diagnostics of the most recent `CREATE VIEW … AS DENSITY`.
#[derive(Debug, Clone)]
pub struct LastBuild {
    /// Name of the created view.
    pub view_name: String,
    /// Full diagnostics from the builder.
    pub built: BuiltView,
}

/// The offline query engine.
#[derive(Debug)]
pub struct Engine {
    db: Database,
    defaults: ViewBuilderConfig,
    last_build: Option<LastBuild>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(ViewBuilderConfig::default())
    }
}

impl Engine {
    /// Creates an engine with the given default view-builder configuration
    /// (individual queries may override the metric and window via
    /// `USING METRIC …` / `WINDOW …`).
    pub fn new(defaults: ViewBuilderConfig) -> Self {
        Engine {
            db: Database::new(),
            defaults,
            last_build: None,
        }
    }

    /// Read access to the underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Diagnostics of the most recent density-view build.
    pub fn last_build(&self) -> Option<&LastBuild> {
        self.last_build.as_ref()
    }

    /// Sets the fork-join width for `SELECT … WITH WORLDS` queries (`0` =
    /// one thread per core). Sampling is bit-identical at every width, so
    /// this only tunes latency.
    pub fn set_worlds_threads(&mut self, threads: usize) {
        self.db.set_worlds_threads(threads);
    }

    /// Loads a time series as a two-column table `(t INT, <value_col>
    /// FLOAT)` — the `raw_values` table of the paper's running example.
    pub fn load_series(
        &mut self,
        table_name: &str,
        value_column: &str,
        series: &TimeSeries,
    ) -> Result<(), CoreError> {
        let table = series_to_table(table_name, value_column, series)?;
        self.db.register_table(table)?;
        Ok(())
    }

    /// Executes a read-only statement (`SELECT`) against the database.
    ///
    /// Takes `&self`: queries never require exclusive access to the engine,
    /// so any number of threads holding shared references (or a
    /// [`crate::concurrent::SharedEngine`] read lock) can run them
    /// concurrently.
    pub fn query(&self, sql: &str) -> Result<QueryOutput, CoreError> {
        self.db.query(sql).map_err(CoreError::from)
    }

    /// Executes one SQL statement; `CREATE VIEW … AS DENSITY` is fulfilled
    /// by the Ω-view builder, everything else by the database layer.
    /// Read-only statements are routed through [`Engine::query`].
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutput, CoreError> {
        let stmt = tspdb_probdb::parse(sql)?;
        match stmt {
            tspdb_probdb::Statement::CreateDensityView(spec) => {
                let (view, built) = build_density_view(&self.db, self.defaults, &spec)?;
                self.db.register_prob_table(view)?;
                self.last_build = Some(LastBuild {
                    view_name: spec.view_name.clone(),
                    built,
                });
                Ok(QueryOutput::None)
            }
            tspdb_probdb::Statement::Select(sel) => {
                self.db.query_select(&sel).map_err(CoreError::from)
            }
            tspdb_probdb::Statement::Explain(sel) => {
                self.db.explain_select(&sel).map_err(CoreError::from)
            }
            other => self.db.execute_parsed(other).map_err(CoreError::from),
        }
    }

    /// Decomposes the engine into its state, for promotion into a
    /// [`crate::concurrent::SharedEngine`].
    pub(crate) fn into_parts(self) -> (Database, ViewBuilderConfig, Option<LastBuild>) {
        (self.db, self.defaults, self.last_build)
    }
}

/// Fulfils a density-view spec against a database snapshot. Free function so
/// both [`Engine`] and [`crate::concurrent::SharedEngine`] can build views —
/// the latter under a *read* lock, since building only reads the source
/// table.
pub(crate) fn build_density_view(
    db: &Database,
    defaults: ViewBuilderConfig,
    spec: &DensityViewSpec,
) -> Result<(ProbTable, BuiltView), CoreError> {
    let source = db.table(&spec.source_table)?;
    let series = table_to_series(source, &spec.time_column, &spec.value_column)?;
    let omega = OmegaSpec::new(spec.delta, spec.n)?;
    let bounds = time_bounds_from_predicate(&spec.predicate, &spec.time_column)?;

    let mut config = defaults;
    if let Some(name) = &spec.metric {
        config.metric = MetricKind::parse(name)?;
    }
    if let Some(w) = spec.window {
        config.window = w;
    }
    let builder = OmegaViewBuilder::new(config)?;
    let built = builder.build(&series, omega, &spec.view_name, bounds)?;
    Ok((built.view.clone(), built))
}

/// Builds the `(t INT, <value_col> FLOAT)` table representation of a time
/// series (shared by [`Engine::load_series`] and
/// [`crate::concurrent::SharedEngine::load_series`]).
pub(crate) fn series_to_table(
    table_name: &str,
    value_column: &str,
    series: &TimeSeries,
) -> Result<Table, CoreError> {
    let schema = Schema::new(vec![
        ("t".to_string(), ColumnType::Int),
        (value_column.to_string(), ColumnType::Float),
    ]);
    let mut table = Table::new(table_name.to_string(), schema);
    for obs in series.iter() {
        table.insert(vec![Value::Int(obs.time), Value::Float(obs.value)])?;
    }
    Ok(table)
}

/// Converts a `(time, value)` table into a [`TimeSeries`], sorting by the
/// time column.
pub fn table_to_series(
    table: &Table,
    time_column: &str,
    value_column: &str,
) -> Result<TimeSeries, CoreError> {
    let t_idx = table.schema().index_of(time_column)?;
    let v_idx = table.schema().index_of(value_column)?;
    let mut pairs: Vec<(i64, f64)> = Vec::with_capacity(table.len());
    for row in table.rows() {
        let t = row[t_idx].as_i64().ok_or_else(|| {
            CoreError::Db(DbError::TypeMismatch {
                column: time_column.to_string(),
                expected: ColumnType::Int,
                got: row[t_idx].column_type(),
            })
        })?;
        let v = row[v_idx].as_f64().ok_or_else(|| {
            CoreError::Db(DbError::TypeMismatch {
                column: value_column.to_string(),
                expected: ColumnType::Float,
                got: row[v_idx].column_type(),
            })
        })?;
        pairs.push((t, v));
    }
    pairs.sort_by_key(|&(t, _)| t);
    if pairs.windows(2).any(|w| w[0].0 == w[1].0) {
        return Err(CoreError::InvalidConfig(format!(
            "duplicate timestamps in {}.{time_column}",
            table.name()
        )));
    }
    let (timestamps, values): (Vec<i64>, Vec<f64>) = pairs.into_iter().unzip();
    Ok(TimeSeries::from_parts(
        value_column.to_string(),
        timestamps,
        values,
    ))
}

/// Reduces a conjunction over the time column into inclusive `(lo, hi)`
/// bounds. Only comparisons on the time column are allowed in a density
/// view's `WHERE` clause (the paper's queries restrict time intervals).
pub fn time_bounds_from_predicate(
    pred: &Conjunction,
    time_column: &str,
) -> Result<Option<(i64, i64)>, CoreError> {
    if pred.is_empty() {
        return Ok(None);
    }
    let mut lo = i64::MIN;
    let mut hi = i64::MAX;
    for cmp in pred {
        if cmp.column != time_column {
            return Err(CoreError::InvalidConfig(format!(
                "density view WHERE clauses may only reference the time column \
                 {time_column:?}, found {:?}",
                cmp.column
            )));
        }
        let v = cmp
            .value
            .as_i64()
            .or_else(|| cmp.value.as_f64().map(|f| f as i64));
        let v = v.ok_or_else(|| {
            CoreError::InvalidConfig("time predicate literal must be numeric".into())
        })?;
        match cmp.op {
            CmpOp::Ge => lo = lo.max(v),
            CmpOp::Gt => lo = lo.max(v.saturating_add(1)),
            CmpOp::Le => hi = hi.min(v),
            CmpOp::Lt => hi = hi.min(v.saturating_sub(1)),
            CmpOp::Eq => {
                lo = lo.max(v);
                hi = hi.min(v);
            }
            CmpOp::Ne => {
                return Err(CoreError::InvalidConfig(
                    "'!=' is not meaningful for a time interval".into(),
                ))
            }
        }
    }
    Ok(Some((lo, hi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricConfig;
    use tspdb_probdb::Comparison;
    use tspdb_timeseries::generate::TemperatureGenerator;

    fn engine_with_series(n: usize) -> Engine {
        let mut e = Engine::new(ViewBuilderConfig {
            window: 60,
            metric_config: MetricConfig {
                p: 1,
                ..MetricConfig::default()
            },
            ..ViewBuilderConfig::default()
        });
        let s = TemperatureGenerator::default().generate(n);
        e.load_series("raw_values", "r", &s).unwrap();
        e
    }

    #[test]
    fn end_to_end_density_view_via_sql() {
        let mut e = engine_with_series(150);
        e.execute("CREATE VIEW prob_view AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        let out = e.execute("SELECT * FROM prob_view LIMIT 6").unwrap();
        let rows = out.prob_rows().unwrap();
        assert_eq!(rows.len(), 6);
        let lb = e.last_build().unwrap();
        assert_eq!(lb.view_name, "prob_view");
        assert_eq!(lb.built.model.len(), 90);
    }

    #[test]
    fn where_clause_limits_time_interval() {
        let mut e = engine_with_series(200);
        // Timestamps are 0, 120, 240, …; pick an interval covering 5 ticks
        // past the warm-up window of 60 samples (t = 7200 s).
        e.execute(
            "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=1, n=4 \
             FROM raw_values WHERE t >= 12000 AND t <= 12480",
        )
        .unwrap();
        let view = e.db().prob_table("pv").unwrap();
        assert_eq!(view.len(), 5 * 4);
        for (row, _) in view.iter() {
            let t = row[0].as_i64().unwrap();
            assert!((12000..=12480).contains(&t));
        }
    }

    #[test]
    fn using_metric_and_window_override_defaults() {
        let mut e = engine_with_series(150);
        e.execute(
            "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=1, n=4 \
             FROM raw_values USING METRIC vt WINDOW 80",
        )
        .unwrap();
        // Window 80 ⇒ 150 − 80 = 70 model rows.
        assert_eq!(e.last_build().unwrap().built.model.len(), 70);
    }

    #[test]
    fn unknown_metric_is_reported() {
        let mut e = engine_with_series(120);
        let err = e
            .execute(
                "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=1, n=4 \
                 FROM raw_values USING METRIC bogus",
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownMetric(_)));
    }

    #[test]
    fn non_time_predicate_is_rejected() {
        let mut e = engine_with_series(120);
        let err = e
            .execute(
                "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=1, n=4 \
                 FROM raw_values WHERE r >= 1",
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn time_bounds_reduction() {
        let pred = vec![
            Comparison::new("t", CmpOp::Ge, 10i64),
            Comparison::new("t", CmpOp::Le, 20i64),
            Comparison::new("t", CmpOp::Gt, 11i64),
            Comparison::new("t", CmpOp::Lt, 20i64),
        ];
        let bounds = time_bounds_from_predicate(&pred, "t").unwrap();
        assert_eq!(bounds, Some((12, 19)));
        assert_eq!(time_bounds_from_predicate(&Vec::new(), "t").unwrap(), None);
        let eq = vec![Comparison::new("t", CmpOp::Eq, 5i64)];
        assert_eq!(time_bounds_from_predicate(&eq, "t").unwrap(), Some((5, 5)));
        let ne = vec![Comparison::new("t", CmpOp::Ne, 5i64)];
        assert!(time_bounds_from_predicate(&ne, "t").is_err());
    }

    #[test]
    fn table_to_series_sorts_and_validates() {
        let schema = Schema::of(&[("t", ColumnType::Int), ("r", ColumnType::Float)]);
        let mut table = Table::new("raw", schema.clone());
        table
            .insert(vec![Value::Int(3), Value::Float(3.0)])
            .unwrap();
        table
            .insert(vec![Value::Int(1), Value::Float(1.0)])
            .unwrap();
        table
            .insert(vec![Value::Int(2), Value::Float(2.0)])
            .unwrap();
        let s = table_to_series(&table, "t", "r").unwrap();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);

        let mut dup = Table::new("raw", schema);
        dup.insert(vec![Value::Int(1), Value::Float(1.0)]).unwrap();
        dup.insert(vec![Value::Int(1), Value::Float(2.0)]).unwrap();
        assert!(table_to_series(&dup, "t", "r").is_err());
    }

    #[test]
    fn ordinary_sql_still_works_through_engine() {
        let mut e = Engine::default();
        e.execute("CREATE TABLE x (a INT)").unwrap();
        e.execute("INSERT INTO x VALUES (1), (2)").unwrap();
        let out = e.execute("SELECT * FROM x WHERE a > 1").unwrap();
        assert_eq!(out.rows().unwrap().len(), 1);
    }

    #[test]
    fn query_takes_shared_reference_and_rejects_writes() {
        let mut e = engine_with_series(150);
        e.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        // Read path through &Engine only.
        let shared: &Engine = &e;
        let out = shared.query("SELECT * FROM pv LIMIT 3").unwrap();
        assert_eq!(out.prob_rows().unwrap().len(), 3);
        // Writes are refused on the read path.
        assert!(shared.query("DROP TABLE raw_values").is_err());
        assert!(shared
            .query("INSERT INTO raw_values VALUES (1, 1.0)")
            .is_err());
        // …and still work through the write path.
        assert!(e.execute("DROP VIEW pv").is_ok());
    }

    #[test]
    fn with_worlds_query_runs_against_a_density_view() {
        let mut e = engine_with_series(150);
        e.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        e.set_worlds_threads(2);
        let out = e
            .query("SELECT * FROM pv THRESHOLD 0.2 WITH WORLDS 4000 SEED 17")
            .unwrap();
        let w = out.worlds().unwrap();
        assert_eq!(w.worlds, 4000);
        assert_eq!(w.seed, 17);
        assert!(w.matching_tuples > 0);
        // Exact cross-check on the same sub-relation.
        let sub = e
            .query("SELECT * FROM pv THRESHOLD 0.2")
            .unwrap()
            .prob_rows()
            .unwrap()
            .clone();
        let exact = tspdb_probdb::query::event_probability(&sub, &Vec::new()).unwrap();
        assert!(
            (w.event_probability - exact).abs() < 3.0 * w.event_ci_half_width + 1e-3,
            "MC {} vs exact {exact}",
            w.event_probability
        );
    }

    #[test]
    fn aggregate_queries_run_through_the_planner_on_views() {
        let mut e = engine_with_series(150);
        e.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        // Exact grouped aggregate: E[count | t] = Σ prob over the 6 cells.
        let out = e.query("SELECT t, COUNT(*) FROM pv GROUP BY t").unwrap();
        let agg = out.aggregate().unwrap();
        assert_eq!(agg.strategy, "exact");
        assert_eq!(agg.groups.len(), 90);
        // The MC strategy answers the same plan within tolerance.
        let mc = e
            .query("SELECT COUNT(*) FROM pv WITH WORLDS 4000 SEED 5")
            .unwrap();
        let mc = mc.aggregate().unwrap();
        let exact = e.query("SELECT COUNT(*) FROM pv").unwrap();
        let exact = exact.aggregate().unwrap();
        let tol = 4.0 * mc.groups[0].values[0].ci_half_width.unwrap() + 1e-3;
        assert!(
            (mc.groups[0].values[0].value - exact.groups[0].values[0].value).abs() <= tol,
            "MC {} vs exact {}",
            mc.groups[0].values[0].value,
            exact.groups[0].values[0].value
        );
        // EXPLAIN reports the plan without executing it.
        let report = e
            .execute("EXPLAIN SELECT t, COUNT(*) FROM pv GROUP BY t")
            .unwrap();
        let report = report.explain().unwrap();
        assert!(report.logical.contains("Aggregate [COUNT(*)] GROUP BY t"));
        assert!(report.strategy.starts_with("exact"));
    }

    #[test]
    fn fig1_style_query_on_view() {
        // Downstream probabilistic query over the created view: the most
        // probable range per timestamp (the "which room is Alice in" shape).
        let mut e = engine_with_series(130);
        e.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=4 FROM raw_values")
            .unwrap();
        let view = e.db().prob_table("pv").unwrap();
        let best = tspdb_probdb::query::most_probable_per_group(view, "t").unwrap();
        assert_eq!(best.len(), 70);
        // The winning cell must be adjacent to the mean (λ ∈ {−1, 0}).
        for (row, _) in best.iter() {
            let lambda = row[1].as_i64().unwrap();
            assert!((-1..=0).contains(&lambda), "winning λ = {lambda}");
        }
    }
}
