//! The σ-cache (paper Section VI-A/B): caching and reusing Gaussian CDF
//! evaluations across time under provable distance and memory guarantees.
//!
//! Key observation (Fig. 8): after a mean shift, the probability values
//! `ρ_λ` depend only on σ̂ — two Gaussians with equal variance produce
//! identical Ω-lattice masses. So the cache stores, for a geometric ladder
//! of standard deviations `σ_q = d_s^q · min(σ̂)`, the zero-mean CDF
//! evaluated at the lattice offsets `λΔ` (Fig. 9), in a sorted container
//! (here a `BTreeMap`, "a B-tree" in the paper). A query with σ̂′ looks up
//! the largest ladder rung ≤ σ̂′ and reuses its values.
//!
//! * Theorem 1 (distance constraint): choosing
//!   `d_s ≤ (2 + √(4 − 4(1−H′²)⁴)) / (2(1−H′²)²)` guarantees the Hellinger
//!   distance between the true and substituted distribution is ≤ H′.
//! * Theorem 2 (memory constraint): with at most `Q′` stored
//!   distributions, `d_s ≥ D_s^{1/Q′}` where `D_s = max(σ̂)/min(σ̂)`.
//!
//! Both can be active at once; when they conflict the cache refuses to
//! build (the paper's storage/error trade-off made explicit).
//!
//! ## Concurrency model
//!
//! The ladder is computed once at build time and never mutated, so it lives
//! in an immutable [`SigmaLadder`] behind an `Arc`; lookups take `&self`.
//! The only mutable state is the pair of hit/miss counters, which are
//! relaxed [`AtomicU64`]s — a [`SigmaCache`] is therefore `Sync` and can
//! answer probability value generation queries from many threads with no
//! lock on the read path.

use crate::error::CoreError;
use crate::omega::{OmegaSpec, ProbabilityValue};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tspdb_stats::divergence::{
    hellinger_equal_mean, ratio_threshold_for_distance, ratio_threshold_for_memory,
};
use tspdb_stats::special::std_normal_cdf;
use tspdb_stats::OrdF64;

/// User-facing constraints for the cache (Section VI-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmaCacheConfig {
    /// Distance constraint `H′`: maximum tolerated Hellinger distance
    /// between the true and the substituted distribution.
    pub distance_constraint: Option<f64>,
    /// Memory constraint `Q′`: maximum number of cached distributions.
    pub memory_constraint: Option<usize>,
}

impl Default for SigmaCacheConfig {
    fn default() -> Self {
        // The paper's experiments use H′ = 0.01.
        SigmaCacheConfig {
            distance_constraint: Some(0.01),
            memory_constraint: None,
        }
    }
}

/// One pre-computed distribution: the zero-mean Gaussian CDF at the lattice
/// offsets (Fig. 9).
#[derive(Debug, Clone)]
struct CachedDistribution {
    sigma: f64,
    /// `Φ(λΔ / σ)` for `λ = −n/2 … n/2` (n + 1 values).
    cdf: Vec<f64>,
}

/// Cache usage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the ladder.
    pub hits: u64,
    /// Lookups that fell outside the ladder and were computed directly.
    pub misses: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

/// The immutable part of the σ-cache: the geometric σ ladder with its
/// pre-computed CDF lattices.
///
/// Built once, never mutated — every accessor takes `&self`, so a ladder
/// wrapped in an `Arc` can be shared freely across threads (it is both
/// `Send` and `Sync`).
#[derive(Debug, Clone)]
pub struct SigmaLadder {
    omega: OmegaSpec,
    ds: f64,
    min_sigma: f64,
    max_sigma: f64,
    ladder: BTreeMap<OrdF64, CachedDistribution>,
}

impl SigmaLadder {
    /// Builds the ladder for standard deviations in `[min_sigma,
    /// max_sigma]` under the given constraints.
    ///
    /// The ratio threshold is resolved as:
    /// * distance only → `d_s` from eq. 11 (largest admissible, fewest
    ///   rungs);
    /// * memory only → `d_s = D_s^{1/Q′}` from eq. 14;
    /// * both → the memory bound is used if it also satisfies the distance
    ///   bound, otherwise [`CoreError::CacheConstraintsConflict`];
    /// * neither → the default `H′ = 0.01`.
    pub fn build(
        min_sigma: f64,
        max_sigma: f64,
        omega: OmegaSpec,
        config: SigmaCacheConfig,
    ) -> Result<Self, CoreError> {
        if !(min_sigma > 0.0) || !(max_sigma >= min_sigma) || !max_sigma.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "sigma-cache needs 0 < min(σ) ≤ max(σ), got [{min_sigma}, {max_sigma}]"
            )));
        }
        if let Some(h) = config.distance_constraint {
            if !(0.0..1.0).contains(&h) || h <= 0.0 {
                return Err(CoreError::InvalidConfig(format!(
                    "distance constraint H' must be in (0,1), got {h}"
                )));
            }
        }
        if config.memory_constraint == Some(0) {
            return Err(CoreError::InvalidConfig(
                "memory constraint Q' must be at least 1".into(),
            ));
        }
        let d_spread = max_sigma / min_sigma; // the paper's D_s (eq. 12)
        let ds = match (config.distance_constraint, config.memory_constraint) {
            (Some(h), None) => ratio_threshold_for_distance(h),
            (None, Some(q)) => ratio_threshold_for_memory(d_spread, q).max(1.0 + 1e-12),
            (Some(h), Some(q)) => {
                let ds_dist = ratio_threshold_for_distance(h);
                let ds_mem = ratio_threshold_for_memory(d_spread, q).max(1.0 + 1e-12);
                if ds_mem > ds_dist {
                    return Err(CoreError::CacheConstraintsConflict {
                        ds_distance: ds_dist,
                        ds_memory: ds_mem,
                    });
                }
                // Any d_s in [ds_mem, ds_dist] satisfies both; use the
                // distance bound (coarsest admissible ladder = least
                // memory), which also respects Q′ since it needs fewer
                // rungs than ds_mem would.
                ds_dist
            }
            (None, None) => ratio_threshold_for_distance(0.01),
        };

        // Rung count: enough powers of d_s to cover [min, max] (eq. 13).
        // Rung q = 0 (σ = min) is included so every σ̂ in range has a lower
        // bracketing rung.
        let q_max = if d_spread <= 1.0 {
            0
        } else {
            (d_spread.ln() / ds.ln()).ceil() as usize
        };
        let offsets = omega.offsets();
        let mut ladder = BTreeMap::new();
        for q in 0..=q_max {
            let sigma = min_sigma * ds.powi(q as i32);
            let cdf = offsets.iter().map(|&o| std_normal_cdf(o / sigma)).collect();
            ladder.insert(OrdF64::new(sigma), CachedDistribution { sigma, cdf });
        }
        Ok(SigmaLadder {
            omega,
            ds,
            min_sigma,
            max_sigma,
            ladder,
        })
    }

    /// The resolved ratio threshold `d_s`.
    pub fn ratio_threshold(&self) -> f64 {
        self.ds
    }

    /// The Ω lattice the ladder was built for.
    pub fn omega(&self) -> OmegaSpec {
        self.omega
    }

    /// Number of cached distributions (`⌈Q⌉ + 1` including the base rung).
    pub fn len(&self) -> usize {
        self.ladder.len()
    }

    /// Whether the ladder is empty (never true after a successful build).
    pub fn is_empty(&self) -> bool {
        self.ladder.is_empty()
    }

    /// Approximate memory footprint in bytes: per rung, `n + 1` CDF values
    /// plus the key and σ — the quantity plotted in Fig. 14(b).
    pub fn memory_bytes(&self) -> usize {
        let per_rung =
            (self.omega.n + 1) * std::mem::size_of::<f64>() + 2 * std::mem::size_of::<f64>();
        self.ladder.len() * per_rung
    }

    /// The worst-case Hellinger distance incurred by ladder substitution:
    /// `H(σ, σ·d_s)` — by Theorem 1 this is ≤ the configured `H′`.
    pub fn worst_case_distance(&self) -> f64 {
        hellinger_equal_mean(1.0, self.ds)
    }

    /// The largest rung ≤ `sigma`, when `sigma` is inside the covered
    /// range.
    fn lookup(&self, sigma: f64) -> Option<&CachedDistribution> {
        if sigma < self.min_sigma || sigma > self.max_sigma {
            return None;
        }
        self.ladder
            .range(..=OrdF64::new(sigma))
            .next_back()
            .map(|(_, d)| d)
    }

    /// The σ of the rung that would answer a query for `sigma` (for tests
    /// and diagnostics).
    pub fn rung_for(&self, sigma: f64) -> Option<f64> {
        self.lookup(sigma).map(|d| d.sigma)
    }

    /// Answers the probability value generation query from the ladder, or
    /// `None` when σ̂ falls outside the covered range.
    pub fn probability_values(&self, r_hat: f64, sigma: f64) -> Option<Vec<ProbabilityValue>> {
        let dist = self.lookup(sigma)?;
        let omega = self.omega;
        Some(
            omega
                .lambdas()
                .enumerate()
                .map(|(i, lambda)| {
                    let (lo, hi) = omega.range(r_hat, lambda);
                    ProbabilityValue {
                        lambda,
                        lo,
                        hi,
                        rho: (dist.cdf[i + 1] - dist.cdf[i]).max(0.0),
                    }
                })
                .collect(),
        )
    }
}

/// The σ-cache: an [`Arc`]-shared [`SigmaLadder`] plus lock-free usage
/// counters.
///
/// All lookups take `&self`; the type is `Send + Sync` and can be queried
/// concurrently from many threads without any mutual exclusion.
#[derive(Debug)]
pub struct SigmaCache {
    ladder: Arc<SigmaLadder>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Clone for SigmaCache {
    /// Clones share the (immutable) ladder and start from a snapshot of the
    /// current counters, preserving the value semantics of the pre-atomic
    /// implementation.
    fn clone(&self) -> Self {
        let stats = self.stats();
        SigmaCache {
            ladder: Arc::clone(&self.ladder),
            hits: AtomicU64::new(stats.hits),
            misses: AtomicU64::new(stats.misses),
        }
    }
}

impl SigmaCache {
    /// Builds the cache for standard deviations in `[min_sigma, max_sigma]`
    /// under the given constraints (see [`SigmaLadder::build`]).
    pub fn build(
        min_sigma: f64,
        max_sigma: f64,
        omega: OmegaSpec,
        config: SigmaCacheConfig,
    ) -> Result<Self, CoreError> {
        Ok(SigmaCache::from_ladder(Arc::new(SigmaLadder::build(
            min_sigma, max_sigma, omega, config,
        )?)))
    }

    /// Wraps an already-built ladder with fresh counters.
    pub fn from_ladder(ladder: Arc<SigmaLadder>) -> Self {
        SigmaCache {
            ladder,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The shared immutable ladder.
    pub fn ladder(&self) -> &Arc<SigmaLadder> {
        &self.ladder
    }

    /// The resolved ratio threshold `d_s`.
    pub fn ratio_threshold(&self) -> f64 {
        self.ladder.ratio_threshold()
    }

    /// Number of cached distributions (`⌈Q⌉ + 1` including the base rung).
    pub fn len(&self) -> usize {
        self.ladder.len()
    }

    /// Whether the ladder is empty (never true after a successful build).
    pub fn is_empty(&self) -> bool {
        self.ladder.is_empty()
    }

    /// Approximate memory footprint in bytes (see
    /// [`SigmaLadder::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.ladder.memory_bytes()
    }

    /// Usage counters, read as one snapshot.
    ///
    /// Both counters are sampled together: the hit counter is re-read until
    /// it is stable around the miss read, so under concurrent traffic the
    /// returned pair is bracketed by the true counter values at entry and
    /// exit of this method (no torn `hits`-from-one-moment /
    /// `misses`-from-another drift across lock round-trips, as the old
    /// Mutex-per-field reads produced). After a few contended attempts the
    /// last sample is returned.
    pub fn stats(&self) -> CacheStats {
        let mut hits = self.hits.load(Ordering::Acquire);
        for _ in 0..8 {
            let misses = self.misses.load(Ordering::Acquire);
            let hits_after = self.hits.load(Ordering::Acquire);
            if hits == hits_after {
                return CacheStats { hits, misses };
            }
            hits = hits_after;
        }
        CacheStats {
            hits,
            misses: self.misses.load(Ordering::Acquire),
        }
    }

    /// The worst-case Hellinger distance incurred by ladder substitution:
    /// `H(σ, σ·d_s)` — by Theorem 1 this is ≤ the configured `H′`.
    pub fn worst_case_distance(&self) -> f64 {
        self.ladder.worst_case_distance()
    }

    /// Answers the probability value generation query for a Gaussian
    /// `N(r̂, σ̂²)` from the cache: finds the largest rung ≤ σ̂ and reuses
    /// its pre-computed CDF lattice (mean-shift invariance, Fig. 8).
    ///
    /// σ̂ outside `[min(σ), max(σ)]` counts as a miss and is computed
    /// directly — the guarantee only covers the range the cache was built
    /// for.
    ///
    /// Takes `&self`: the lookup is lock-free and safe to issue from many
    /// threads concurrently.
    pub fn probability_values(&self, r_hat: f64, sigma: f64) -> Vec<ProbabilityValue> {
        debug_assert!(sigma > 0.0, "sigma-cache query with non-positive σ");
        match self.ladder.probability_values(r_hat, sigma) {
            Some(values) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                values
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                direct_probability_values(r_hat, sigma, &self.ladder.omega)
            }
        }
    }

    /// The σ of the rung that would answer a query for `sigma` (for tests
    /// and diagnostics).
    pub fn rung_for(&self, sigma: f64) -> Option<f64> {
        self.ladder.rung_for(sigma)
    }
}

/// The uncached (naive) evaluation of eq. 9 for a Gaussian: `n + 1` fresh
/// CDF computations per tuple. This is the baseline of Fig. 14(a).
pub fn direct_probability_values(
    r_hat: f64,
    sigma: f64,
    omega: &OmegaSpec,
) -> Vec<ProbabilityValue> {
    let offsets = omega.offsets();
    let cdfs: Vec<f64> = offsets.iter().map(|&o| std_normal_cdf(o / sigma)).collect();
    omega
        .lambdas()
        .enumerate()
        .map(|(i, lambda)| {
            let (lo, hi) = omega.range(r_hat, lambda);
            ProbabilityValue {
                lambda,
                lo,
                hi,
                rho: (cdfs[i + 1] - cdfs[i]).max(0.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_stats::divergence::hellinger_sq_equal_mean;

    fn omega() -> OmegaSpec {
        OmegaSpec::new(0.05, 300).unwrap()
    }

    #[test]
    fn ladder_size_matches_theory() {
        // H′ = 0.01 ⇒ d_s ≈ 1.0202; D_s = 2000 ⇒ ⌈ln D_s / ln d_s⌉ ≈ 380.
        let cache = SigmaCache::build(0.001, 2.0, omega(), SigmaCacheConfig::default()).unwrap();
        let expected = (2000.0f64.ln() / cache.ratio_threshold().ln()).ceil() as usize + 1;
        assert_eq!(cache.len(), expected);
        assert!(cache.len() >= 350 && cache.len() <= 420, "{}", cache.len());
    }

    #[test]
    fn memory_grows_logarithmically_in_spread() {
        // Fig. 14(b): doubling D_s adds a constant number of rungs.
        let sizes: Vec<usize> = [2000.0, 4000.0, 8000.0, 16000.0]
            .iter()
            .map(|&spread| {
                SigmaCache::build(1.0, spread, omega(), SigmaCacheConfig::default())
                    .unwrap()
                    .memory_bytes()
            })
            .collect();
        let d1 = sizes[1] - sizes[0];
        let d2 = sizes[2] - sizes[1];
        let d3 = sizes[3] - sizes[2];
        // Constant additive growth per doubling (within one rung).
        let per_rung = (omega().n + 3) * 8;
        assert!(d1.abs_diff(d2) <= per_rung, "{sizes:?}");
        assert!(d2.abs_diff(d3) <= per_rung, "{sizes:?}");
        // And it is *not* linear: quadrupling spread ≪ quadruple memory.
        assert!(sizes[3] < sizes[0] * 2, "{sizes:?}");
    }

    #[test]
    fn distance_guarantee_holds_for_every_query() {
        let h_prime = 0.02;
        let cache = SigmaCache::build(
            0.5,
            50.0,
            OmegaSpec::new(0.1, 20).unwrap(),
            SigmaCacheConfig {
                distance_constraint: Some(h_prime),
                memory_constraint: None,
            },
        )
        .unwrap();
        for i in 0..500 {
            let sigma = 0.5 + (i as f64 / 499.0) * 49.5;
            let rung = cache.rung_for(sigma).unwrap();
            let h = hellinger_sq_equal_mean(rung, sigma).sqrt();
            assert!(
                h <= h_prime + 1e-9,
                "σ {sigma}: rung {rung} violates H′ ({h} > {h_prime})"
            );
            // And the cache actually answers from the ladder.
            cache.probability_values(0.0, sigma);
        }
        assert_eq!(cache.stats().misses, 0);
        assert!(cache.worst_case_distance() <= h_prime + 1e-9);
    }

    #[test]
    fn cached_values_approximate_direct_values() {
        let spec = OmegaSpec::new(0.05, 300).unwrap();
        let cache = SigmaCache::build(0.2, 5.0, spec, SigmaCacheConfig::default()).unwrap();
        for &sigma in &[0.2, 0.31, 0.77, 1.9, 4.99] {
            let cached = cache.probability_values(10.0, sigma);
            let direct = direct_probability_values(10.0, sigma, &spec);
            let max_err = cached
                .iter()
                .zip(&direct)
                .map(|(c, d)| (c.rho - d.rho).abs())
                .fold(0.0f64, f64::max);
            // H′ = 0.01 keeps per-cell probability error small.
            assert!(max_err < 0.02, "σ {sigma}: max cell error {max_err}");
            // Ranges are identical — only the masses are approximated.
            for (c, d) in cached.iter().zip(&direct) {
                assert_eq!(c.lambda, d.lambda);
                assert!((c.lo - d.lo).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lookup_uses_lower_bracketing_rung() {
        let cache = SigmaCache::build(
            1.0,
            10.0,
            OmegaSpec::new(0.5, 4).unwrap(),
            SigmaCacheConfig::default(),
        )
        .unwrap();
        let ds = cache.ratio_threshold();
        // A σ between rung 2 and 3 must resolve to rung 2.
        let probe = ds.powi(2) * 1.001;
        let rung = cache.rung_for(probe).unwrap();
        assert!((rung - ds.powi(2)).abs() < 1e-9, "rung {rung}");
        assert!(rung <= probe);
        cache.probability_values(0.0, probe);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn out_of_range_sigma_counts_as_miss_but_stays_correct() {
        let spec = OmegaSpec::new(0.1, 10).unwrap();
        let cache = SigmaCache::build(1.0, 2.0, spec, SigmaCacheConfig::default()).unwrap();
        let got = cache.probability_values(0.0, 100.0);
        let want = direct_probability_values(0.0, 100.0, &spec);
        assert_eq!(got, want);
        assert_eq!(cache.stats().misses, 1);
        let below = cache.probability_values(0.0, 0.5);
        assert_eq!(below, direct_probability_values(0.0, 0.5, &spec));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn memory_constraint_caps_ladder() {
        let cache = SigmaCache::build(
            1.0,
            1000.0,
            OmegaSpec::new(0.1, 10).unwrap(),
            SigmaCacheConfig {
                distance_constraint: None,
                memory_constraint: Some(50),
            },
        )
        .unwrap();
        // Q′ = 50 allows at most 50 geometric steps (+1 base rung).
        assert!(cache.len() <= 51, "ladder has {} rungs", cache.len());
    }

    #[test]
    fn conflicting_constraints_are_rejected() {
        // Tight distance (fine ladder) + tiny memory (coarse ladder).
        let err = SigmaCache::build(
            1.0,
            10_000.0,
            OmegaSpec::new(0.1, 10).unwrap(),
            SigmaCacheConfig {
                distance_constraint: Some(0.001),
                memory_constraint: Some(5),
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::CacheConstraintsConflict { .. }));
    }

    #[test]
    fn compatible_joint_constraints_build() {
        let cache = SigmaCache::build(
            1.0,
            100.0,
            OmegaSpec::new(0.1, 10).unwrap(),
            SigmaCacheConfig {
                distance_constraint: Some(0.05),
                memory_constraint: Some(500),
            },
        )
        .unwrap();
        assert!(cache.len() <= 501);
    }

    #[test]
    fn degenerate_constant_sigma_range() {
        // min == max: one rung serves everything.
        let cache = SigmaCache::build(
            2.0,
            2.0,
            OmegaSpec::new(0.1, 10).unwrap(),
            SigmaCacheConfig::default(),
        )
        .unwrap();
        assert_eq!(cache.len(), 1);
        let vals = cache.probability_values(5.0, 2.0);
        let direct = direct_probability_values(5.0, 2.0, &OmegaSpec::new(0.1, 10).unwrap());
        for (a, b) in vals.iter().zip(&direct) {
            assert!((a.rho - b.rho).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let spec = OmegaSpec::new(0.1, 10).unwrap();
        assert!(SigmaCache::build(0.0, 1.0, spec, SigmaCacheConfig::default()).is_err());
        assert!(SigmaCache::build(2.0, 1.0, spec, SigmaCacheConfig::default()).is_err());
        assert!(SigmaCache::build(
            1.0,
            2.0,
            spec,
            SigmaCacheConfig {
                distance_constraint: Some(1.5),
                memory_constraint: None
            }
        )
        .is_err());
        assert!(SigmaCache::build(
            1.0,
            2.0,
            spec,
            SigmaCacheConfig {
                distance_constraint: None,
                memory_constraint: Some(0)
            }
        )
        .is_err());
    }

    #[test]
    fn cache_size_independent_of_view_granularity() {
        // "the number of distributions stored by the σ–cache is independent
        // from the view parameters ∆ and n" — rung *count* stays fixed as
        // the lattice gets finer (bytes per rung grow, of course).
        let coarse = SigmaCache::build(
            1.0,
            100.0,
            OmegaSpec::new(1.0, 10).unwrap(),
            SigmaCacheConfig::default(),
        )
        .unwrap();
        let fine = SigmaCache::build(
            1.0,
            100.0,
            OmegaSpec::new(0.01, 1000).unwrap(),
            SigmaCacheConfig::default(),
        )
        .unwrap();
        assert_eq!(coarse.len(), fine.len());
    }

    #[test]
    fn lookups_through_shared_reference_count_correctly() {
        // The whole point of the refactor: &SigmaCache is enough to query,
        // and the counters survive concurrent updates.
        let cache = SigmaCache::build(
            0.5,
            5.0,
            OmegaSpec::new(0.5, 4).unwrap(),
            SigmaCacheConfig::default(),
        )
        .unwrap();
        let shared: &SigmaCache = &cache;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..250 {
                        shared.probability_values(0.0, 0.5 + (i % 9) as f64 * 0.5);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.total(), 1000);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn clone_shares_ladder_but_not_counters() {
        let cache = SigmaCache::build(
            1.0,
            2.0,
            OmegaSpec::new(0.5, 4).unwrap(),
            SigmaCacheConfig::default(),
        )
        .unwrap();
        cache.probability_values(0.0, 1.5);
        let clone = cache.clone();
        assert_eq!(clone.stats(), cache.stats());
        clone.probability_values(0.0, 1.5);
        assert_eq!(clone.stats().hits, 2);
        assert_eq!(cache.stats().hits, 1);
        assert!(Arc::ptr_eq(cache.ladder(), clone.ladder()));
    }
}
