//! C-GARCH: the cleaning-enhanced GARCH metric (paper Section V).
//!
//! Plain ARMA-GARCH breaks down when the training window contains
//! erroneous values — the squared terms in the GARCH recursion amplify a
//! single spike into an absurd volatility estimate (the paper's Fig. 5a,
//! where one bad reading inflates the inferred bound to 1800 °C). C-GARCH
//! wraps ARMA-GARCH with an online cleaning protocol:
//!
//! 1. At each step, infer `r̂_t`, `σ̂_t` and κ-bounds from the *cleaned*
//!    window (κ = 3 by default, so a legitimate value falls outside with
//!    probability ≈ 0.0027).
//! 2. If the incoming raw value lies outside `[lb, ub]`, mark it erroneous
//!    and substitute the inferred `r̂_t` into the window.
//! 3. Track the run of consecutive rejections; once it exceeds `ocmax` the
//!    readings are declared a *trend change*, the last `ocmax + 1` raw
//!    values are scrubbed by the successive variance reduction filter
//!    (Algorithm 2) to drop any genuine errors among them, and the window
//!    re-adopts the cleaned raw values.
//!
//! `SVmax` is learned from a clean sample as the maximum windowed variance
//! at window length `ocmax` ([`CGarch::learn_sv_max`]).

use crate::error::CoreError;
use crate::metrics::{ArmaGarch, DynamicDensityMetric, Inference, MetricConfig};
use crate::svr::svr_filter;
use std::collections::VecDeque;
use tspdb_stats::descriptive::max_windowed_variance;

/// Cleaning-specific configuration of C-GARCH.
#[derive(Debug, Clone, Copy)]
pub struct CGarchConfig {
    /// Sliding-window length `H` used for model estimation.
    pub window: usize,
    /// Maximum run of consecutive rejections before declaring a trend
    /// change (the paper suggests twice the longest expected error burst;
    /// its Fig. 5b uses 7, the Fig. 13 experiment uses 8).
    pub ocmax: usize,
    /// Variance threshold for the SVR filter; when `None` it is learned
    /// from the first full (warm-up) window.
    pub sv_max: Option<f64>,
}

impl Default for CGarchConfig {
    fn default() -> Self {
        CGarchConfig {
            window: 60,
            ocmax: 8,
            sv_max: None,
        }
    }
}

/// Result of feeding one raw value into the online cleaner.
#[derive(Debug, Clone, Copy)]
pub struct CGarchStep {
    /// Positional index of the value within the stream.
    pub index: usize,
    /// The inference made *before* seeing the value (`None` during
    /// warm-up while the window fills).
    pub inference: Option<Inference>,
    /// Whether the raw value was flagged as erroneous.
    pub flagged: bool,
    /// Whether this step triggered a trend-change re-adjustment.
    pub trend_change: bool,
    /// The value actually admitted into the window (the raw value, the
    /// inferred replacement, or the SVR-cleaned raw value).
    pub accepted: f64,
}

/// Batch report of an entire series run.
#[derive(Debug, Clone, Default)]
pub struct CGarchReport {
    /// Number of values processed.
    pub steps: usize,
    /// Indices flagged as erroneous.
    pub detections: Vec<usize>,
    /// Indices at which a trend change was declared.
    pub trend_changes: Vec<usize>,
    /// Per-step inference (post warm-up): `(index, r̂, σ̂, lb, ub)`.
    pub inferences: Vec<(usize, Inference)>,
}

/// The online C-GARCH processor.
#[derive(Debug, Clone)]
pub struct CGarch {
    cfg: CGarchConfig,
    inner: ArmaGarch,
    /// Cleaned estimation window (length ≤ `cfg.window`).
    buf: Vec<f64>,
    /// The most recent `ocmax + 1` *raw* values (pre-cleaning).
    recent_raw: VecDeque<f64>,
    consecutive: usize,
    seen: usize,
    sv_max: Option<f64>,
    detections: Vec<usize>,
    trend_changes: Vec<usize>,
}

impl CGarch {
    /// Creates a C-GARCH processor.
    pub fn new(cfg: CGarchConfig, metric: MetricConfig) -> Result<Self, CoreError> {
        if cfg.ocmax == 0 {
            return Err(CoreError::InvalidConfig(
                "C-GARCH: ocmax must be at least 1".into(),
            ));
        }
        let inner = ArmaGarch::new(metric)?;
        if cfg.window < inner.min_window() {
            return Err(CoreError::InvalidConfig(format!(
                "C-GARCH: window {} below the ARMA-GARCH minimum {}",
                cfg.window,
                inner.min_window()
            )));
        }
        if let Some(sv) = cfg.sv_max {
            if !(sv >= 0.0) {
                return Err(CoreError::InvalidConfig(format!(
                    "C-GARCH: SVmax must be non-negative, got {sv}"
                )));
            }
        }
        Ok(CGarch {
            sv_max: cfg.sv_max,
            cfg,
            inner,
            buf: Vec::new(),
            recent_raw: VecDeque::new(),
            consecutive: 0,
            seen: 0,
            detections: Vec::new(),
            trend_changes: Vec::new(),
        })
    }

    /// Learns `SVmax` from a clean sample: the maximum sample variance over
    /// all sliding windows of length `ocmax` (paper Section V-B).
    pub fn learn_sv_max(clean: &[f64], ocmax: usize) -> f64 {
        let v = max_windowed_variance(clean, ocmax.max(2));
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// Learns `SVmax` from a *possibly contaminated* sample: the median of
    /// the sliding-window variances (robust against the handful of windows
    /// a spike touches), inflated to cover legitimate dispersion peaks.
    /// Used by the stateless trait path when no clean sample is available.
    pub fn robust_sv_max(values: &[f64], ocmax: usize) -> f64 {
        let w = ocmax.max(2);
        let stds = tspdb_stats::descriptive::rolling_std(values, w);
        if stds.is_empty() {
            return 0.0;
        }
        let mut vars: Vec<f64> = stds.iter().map(|s| s * s).collect();
        vars.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vars[vars.len() / 2];
        median * 6.0
    }

    /// The resolved `SVmax` (after warm-up if it was learned lazily).
    pub fn sv_max(&self) -> Option<f64> {
        self.sv_max
    }

    /// Indices flagged as erroneous so far.
    pub fn detections(&self) -> &[usize] {
        &self.detections
    }

    /// Indices where a trend change was declared.
    pub fn trend_changes(&self) -> &[usize] {
        &self.trend_changes
    }

    /// Feeds one raw value; returns what happened.
    ///
    /// Non-finite readings (NaN/±∞ — sensor dropouts) are treated as
    /// erroneous outright: flagged, replaced by the inferred value, and
    /// excluded from the trend-change counter (a dropout is not a trend).
    pub fn push(&mut self, r: f64) -> Result<CGarchStep, CoreError> {
        let index = self.seen;
        self.seen += 1;
        if !r.is_finite() {
            self.detections.push(index);
            let replacement = if self.buf.len() >= self.cfg.window {
                let inference = self.inner.infer(&self.buf)?;
                let accepted = inference.expected;
                self.buf.remove(0);
                self.buf.push(accepted);
                return Ok(CGarchStep {
                    index,
                    inference: Some(inference),
                    flagged: true,
                    trend_change: false,
                    accepted,
                });
            } else {
                // Warm-up: repeat the last accepted value (or zero at the
                // very start) so the window keeps filling with finite data.
                self.buf.last().copied().unwrap_or(0.0)
            };
            self.buf.push(replacement);
            return Ok(CGarchStep {
                index,
                inference: None,
                flagged: true,
                trend_change: false,
                accepted: replacement,
            });
        }
        self.recent_raw.push_back(r);
        while self.recent_raw.len() > self.cfg.ocmax + 1 {
            self.recent_raw.pop_front();
        }

        // Warm-up: accumulate until the window is full.
        if self.buf.len() < self.cfg.window {
            self.buf.push(r);
            if self.buf.len() == self.cfg.window && self.sv_max.is_none() {
                // Learn SVmax lazily from the warm-up window.
                self.sv_max = Some(Self::learn_sv_max(&self.buf, self.cfg.ocmax));
            }
            return Ok(CGarchStep {
                index,
                inference: None,
                flagged: false,
                trend_change: false,
                accepted: r,
            });
        }

        let inference = self.inner.infer(&self.buf)?;
        let sv_max = self
            .sv_max
            .unwrap_or_else(|| Self::learn_sv_max(&self.buf, self.cfg.ocmax));

        let (accepted, flagged, trend_change) = if inference.contains(r) {
            self.consecutive = 0;
            (r, false, false)
        } else {
            self.detections.push(index);
            self.consecutive += 1;
            if self.consecutive > self.cfg.ocmax {
                // Trend change: scrub the recent raw values of genuine
                // errors, then re-adopt them so the model re-anchors on the
                // new regime.
                self.trend_changes.push(index);
                self.consecutive = 0;
                let raw: Vec<f64> = self.recent_raw.iter().copied().collect();
                let cleaned = svr_filter(&raw, sv_max);
                // Overwrite the tail of the window (those positions held
                // r̂ substitutes) with the cleaned raw history.
                let tail = cleaned.values.len() - 1; // last value is r_t itself
                let start = self.buf.len() - tail;
                self.buf[start..].copy_from_slice(&cleaned.values[..tail]);
                (cleaned.values[tail], true, true)
            } else {
                (inference.expected, true, false)
            }
        };

        self.buf.remove(0);
        self.buf.push(accepted);
        Ok(CGarchStep {
            index,
            inference: Some(inference),
            flagged,
            trend_change,
            accepted,
        })
    }

    /// Processes an entire value sequence and aggregates a report.
    pub fn process(&mut self, values: &[f64]) -> Result<CGarchReport, CoreError> {
        let mut report = CGarchReport::default();
        for &v in values {
            let step = self.push(v)?;
            report.steps += 1;
            if step.flagged {
                report.detections.push(step.index);
            }
            if step.trend_change {
                report.trend_changes.push(step.index);
            }
            if let Some(inf) = step.inference {
                report.inferences.push((step.index, inf));
            }
        }
        Ok(report)
    }
}

impl DynamicDensityMetric for CGarch {
    fn name(&self) -> &'static str {
        "cgarch"
    }

    fn min_window(&self) -> usize {
        self.inner.min_window()
    }

    /// Stateless per-window use: scrub the window with the SVR filter
    /// first (learning `SVmax` from the window itself when unset), then run
    /// ARMA-GARCH on the cleaned values.
    fn infer(&mut self, window: &[f64]) -> Result<Inference, CoreError> {
        if window.len() < self.min_window() {
            return Err(CoreError::WindowTooShort {
                needed: self.min_window(),
                got: window.len(),
            });
        }
        let sv_max = self
            .sv_max
            .unwrap_or_else(|| Self::robust_sv_max(window, self.cfg.ocmax));
        // Clean short sub-windows rather than the whole window: SVmax is a
        // short-window dispersion bound, not an H-window one.
        let chunk = (self.cfg.ocmax + 1).max(4);
        let mut cleaned = Vec::with_capacity(window.len());
        for piece in window.chunks(chunk) {
            cleaned.extend_from_slice(&svr_filter(piece, sv_max).values);
        }
        self.inner.infer(&cleaned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_timeseries::errors::{inject_spikes, SpikeConfig};
    use tspdb_timeseries::generate::TemperatureGenerator;

    fn temp(n: usize) -> Vec<f64> {
        TemperatureGenerator::default()
            .generate(n)
            .values()
            .to_vec()
    }

    fn default_cgarch() -> CGarch {
        CGarch::new(CGarchConfig::default(), MetricConfig::default()).unwrap()
    }

    #[test]
    fn warm_up_produces_no_inference() {
        let mut c = default_cgarch();
        let values = temp(59);
        for v in values {
            let step = c.push(v).unwrap();
            assert!(step.inference.is_none());
            assert!(!step.flagged);
        }
    }

    #[test]
    fn detects_isolated_spikes() {
        let series = TemperatureGenerator::default().generate(600);
        let inj = inject_spikes(
            &series,
            &SpikeConfig {
                count: 5,
                protect_prefix: 80,
                seed: 7,
                ..SpikeConfig::default()
            },
        );
        let mut c = default_cgarch();
        let report = c.process(inj.series.values()).unwrap();
        let rate = inj.capture_rate(&report.detections);
        assert!(
            rate >= 0.8,
            "C-GARCH captured only {:.0}% of spikes ({:?} vs {:?})",
            rate * 100.0,
            report.detections,
            inj.positions
        );
    }

    #[test]
    fn spikes_do_not_inflate_volatility() {
        // The defining C-GARCH property (Fig. 5): after a spike, σ̂ must
        // stay at the clean-data scale rather than exploding.
        let series = TemperatureGenerator::default().generate(400);
        let inj = inject_spikes(
            &series,
            &SpikeConfig {
                count: 3,
                protect_prefix: 100,
                seed: 3,
                ..SpikeConfig::default()
            },
        );
        let mut c = default_cgarch();
        let report = c.process(inj.series.values()).unwrap();
        let max_sigma = report
            .inferences
            .iter()
            .map(|(_, inf)| inf.density.std())
            .fold(0.0f64, f64::max);
        // Clean temperature σ is well below 2 °C; a GARCH blow-up would
        // push σ̂ into the tens (the paper saw 1800 °C bounds).
        assert!(
            max_sigma < 5.0,
            "σ̂ exploded to {max_sigma} despite cleaning"
        );
    }

    #[test]
    fn plain_garch_inflates_where_cgarch_does_not() {
        // Head-to-head on the same corrupted stream (the Fig. 5a vs 5b
        // contrast).
        let series = TemperatureGenerator::default().generate(400);
        let inj = inject_spikes(
            &series,
            &SpikeConfig {
                count: 3,
                protect_prefix: 100,
                seed: 3,
                ..SpikeConfig::default()
            },
        );
        let h = 60;
        let mut plain = ArmaGarch::new(MetricConfig::default()).unwrap();
        let mut plain_max = 0.0f64;
        for t in h..inj.series.len() {
            let w = &inj.series.values()[t - h..t];
            if let Ok(inf) = plain.infer(w) {
                plain_max = plain_max.max(inf.density.std());
            }
        }
        let mut c = default_cgarch();
        let report = c.process(inj.series.values()).unwrap();
        let cg_max = report
            .inferences
            .iter()
            .map(|(_, inf)| inf.density.std())
            .fold(0.0f64, f64::max);
        assert!(
            plain_max > cg_max * 3.0,
            "plain GARCH max σ {plain_max} vs C-GARCH {cg_max}: cleaning had no effect"
        );
    }

    #[test]
    fn trend_change_is_adopted() {
        // A genuine level shift: after ocmax rejections the model must
        // re-anchor instead of rejecting forever.
        let mut values = temp(200);
        for v in values.iter_mut().skip(120) {
            *v += 12.0; // sudden +12 °C regime (weather front)
        }
        let mut c = CGarch::new(
            CGarchConfig {
                ocmax: 6,
                ..CGarchConfig::default()
            },
            MetricConfig::default(),
        )
        .unwrap();
        let report = c.process(&values).unwrap();
        assert!(
            !report.trend_changes.is_empty(),
            "no trend change declared on a level shift"
        );
        // After adoption, most later values must be accepted again (a model
        // that never re-anchors rejects essentially all ~40 of them).
        let last_quarter_flags = report.detections.iter().filter(|&&i| i >= 160).count();
        assert!(
            last_quarter_flags < 15,
            "model never re-anchored: {last_quarter_flags} late rejections"
        );
    }

    #[test]
    fn learn_sv_max_matches_descriptive_helper() {
        let xs = temp(300);
        let sv = CGarch::learn_sv_max(&xs, 8);
        let direct = max_windowed_variance(&xs, 8);
        assert!((sv - direct).abs() < 1e-12);
        assert!(sv > 0.0);
    }

    #[test]
    fn stateless_trait_use_survives_spiked_window() {
        let series = TemperatureGenerator::default().generate(200);
        let mut w = series.values()[..80].to_vec();
        w[40] += 300.0;
        let mut c = default_cgarch();
        let inf = c.infer(&w).unwrap();
        assert!(
            inf.density.std() < 5.0,
            "stateless C-GARCH σ̂ {} inflated",
            inf.density.std()
        );
    }

    #[test]
    fn config_validation() {
        assert!(CGarch::new(
            CGarchConfig {
                ocmax: 0,
                ..CGarchConfig::default()
            },
            MetricConfig::default()
        )
        .is_err());
        assert!(CGarch::new(
            CGarchConfig {
                window: 5,
                ..CGarchConfig::default()
            },
            MetricConfig::default()
        )
        .is_err());
        assert!(CGarch::new(
            CGarchConfig {
                sv_max: Some(-1.0),
                ..CGarchConfig::default()
            },
            MetricConfig::default()
        )
        .is_err());
    }

    #[test]
    fn sv_max_is_learned_lazily() {
        let mut c = default_cgarch();
        assert!(c.sv_max().is_none());
        for v in temp(61) {
            c.push(v).unwrap();
        }
        assert!(c.sv_max().is_some());
    }
}
