//! Online mode: streaming probabilistic-view generation (paper Section II,
//! "In the online mode, the dynamic density metrics infer `p_t(R_t)` as
//! soon as a new value `r_t` is streamed to the system").
//!
//! Offline views know the σ̂ spread up front and can pre-compute the whole
//! ladder; a stream does not. [`AdaptiveSigmaCache`] therefore grows the
//! ladder lazily: rungs live at `σ_ref · d_s^q` for integer `q` (both
//! directions), a rung is materialised the first time a query lands in its
//! interval, and the Theorem 1 distance guarantee is preserved because a
//! query with σ̂ is always answered by the rung just below it
//! (`σ̂ / rung ≤ d_s`). A rung budget caps memory; queries beyond the
//! budget fall back to direct evaluation (counted as misses).

use crate::error::CoreError;
use crate::metrics::{make_metric, DynamicDensityMetric, Inference, MetricConfig, MetricKind};
use crate::omega::{probability_values, OmegaSpec, ProbabilityValue};
use crate::sigma_cache::{direct_probability_values, CacheStats};
use std::collections::BTreeMap;
use tspdb_stats::divergence::ratio_threshold_for_distance;
use tspdb_stats::special::std_normal_cdf;
use tspdb_stats::Density;

/// Lazily grown σ-ladder for streaming use.
#[derive(Debug, Clone)]
pub struct AdaptiveSigmaCache {
    omega: OmegaSpec,
    ds: f64,
    ln_ds: f64,
    sigma_ref: Option<f64>,
    rungs: BTreeMap<i32, Vec<f64>>,
    max_rungs: usize,
    stats: CacheStats,
}

impl AdaptiveSigmaCache {
    /// Creates the cache with a Hellinger distance constraint `H′` and a
    /// rung budget.
    pub fn new(omega: OmegaSpec, h_prime: f64, max_rungs: usize) -> Result<Self, CoreError> {
        if !(h_prime > 0.0 && h_prime < 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "distance constraint H' must be in (0,1), got {h_prime}"
            )));
        }
        if max_rungs == 0 {
            return Err(CoreError::InvalidConfig(
                "adaptive cache needs a positive rung budget".into(),
            ));
        }
        let ds = ratio_threshold_for_distance(h_prime);
        Ok(AdaptiveSigmaCache {
            omega,
            ds,
            ln_ds: ds.ln(),
            sigma_ref: None,
            rungs: BTreeMap::new(),
            max_rungs,
            stats: CacheStats::default(),
        })
    }

    /// Resolved ratio threshold `d_s`.
    pub fn ratio_threshold(&self) -> f64 {
        self.ds
    }

    /// Number of materialised rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Whether no rung has been materialised yet.
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// Usage counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The rung index for a given σ: the largest `q` with
    /// `σ_ref · d_s^q ≤ σ`.
    fn rung_index(&self, sigma: f64, sigma_ref: f64) -> i32 {
        ((sigma / sigma_ref).ln() / self.ln_ds).floor() as i32
    }

    /// Answers eq. 9 for `N(r̂, σ²)`, materialising the rung on first use.
    pub fn probability_values(&mut self, r_hat: f64, sigma: f64) -> Vec<ProbabilityValue> {
        debug_assert!(sigma > 0.0);
        let sigma_ref = *self.sigma_ref.get_or_insert(sigma);
        let q = self.rung_index(sigma, sigma_ref);
        if !self.rungs.contains_key(&q) {
            if self.rungs.len() >= self.max_rungs {
                self.stats.misses += 1;
                return direct_probability_values(r_hat, sigma, &self.omega);
            }
            let rung_sigma = sigma_ref * self.ds.powi(q);
            let cdf = self
                .omega
                .offsets()
                .iter()
                .map(|&o| std_normal_cdf(o / rung_sigma))
                .collect();
            self.rungs.insert(q, cdf);
        }
        self.stats.hits += 1;
        let cdf = &self.rungs[&q];
        let omega = self.omega;
        omega
            .lambdas()
            .enumerate()
            .map(|(i, lambda)| {
                let (lo, hi) = omega.range(r_hat, lambda);
                ProbabilityValue {
                    lambda,
                    lo,
                    hi,
                    rho: (cdf[i + 1] - cdf[i]).max(0.0),
                }
            })
            .collect()
    }
}

/// One emitted row of the online view stream.
#[derive(Debug, Clone)]
pub struct OnlineRow {
    /// Timestamp of the observation the densities refer to.
    pub time: i64,
    /// The inference backing this row.
    pub inference: Inference,
    /// The Ω-lattice probability values `Λ_t`.
    pub values: Vec<ProbabilityValue>,
}

/// Streaming Ω-view builder: push `(t, r_t)` observations, receive
/// probability rows as soon as the window has filled.
pub struct OnlineViewBuilder {
    metric: Box<dyn DynamicDensityMetric + Send>,
    omega: OmegaSpec,
    h: usize,
    window: Vec<f64>,
    cache: Option<AdaptiveSigmaCache>,
}

impl OnlineViewBuilder {
    /// Creates a streaming builder. `cache_h_prime` enables the adaptive
    /// σ-cache with the given distance constraint.
    pub fn new(
        kind: MetricKind,
        config: MetricConfig,
        h: usize,
        omega: OmegaSpec,
        cache_h_prime: Option<f64>,
    ) -> Result<Self, CoreError> {
        let metric = make_metric(kind, config)?;
        if h < metric.min_window() {
            return Err(CoreError::WindowTooShort {
                needed: metric.min_window(),
                got: h,
            });
        }
        let cache = match cache_h_prime {
            Some(hp) => Some(AdaptiveSigmaCache::new(omega, hp, 4096)?),
            None => None,
        };
        Ok(OnlineViewBuilder {
            metric,
            omega,
            h,
            window: Vec::new(),
            cache,
        })
    }

    /// Number of values still needed before rows are emitted.
    pub fn warmup_remaining(&self) -> usize {
        self.h.saturating_sub(self.window.len())
    }

    /// Cache statistics (when caching is enabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Feeds one observation. The density is inferred from the window
    /// *before* the observation enters it — `p_t` must not peek at `r_t`.
    pub fn push(&mut self, time: i64, value: f64) -> Result<Option<OnlineRow>, CoreError> {
        let row = if self.window.len() >= self.h {
            let inference = self.metric.infer(&self.window)?;
            let values = match (&mut self.cache, &inference.density) {
                (Some(c), Density::Gaussian(g)) => c.probability_values(g.mean(), g.std()),
                _ => probability_values(&inference.density, &self.omega),
            };
            Some(OnlineRow {
                time,
                inference,
                values,
            })
        } else {
            None
        };
        self.window.push(value);
        if self.window.len() > self.h {
            self.window.remove(0);
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_timeseries::generate::TemperatureGenerator;

    #[test]
    fn adaptive_cache_guarantee_holds() {
        let omega = OmegaSpec::new(0.1, 10).unwrap();
        let mut cache = AdaptiveSigmaCache::new(omega, 0.01, 1000).unwrap();
        let ds = cache.ratio_threshold();
        for i in 1..400 {
            let sigma = 0.05 * (1.0 + i as f64 * 0.09);
            let cached = cache.probability_values(1.0, sigma);
            let direct = direct_probability_values(1.0, sigma, &omega);
            for (c, d) in cached.iter().zip(&direct) {
                // With H' = 0.01 the rho error per cell stays small.
                assert!(
                    (c.rho - d.rho).abs() < 0.02,
                    "σ {sigma}: {} vs {}",
                    c.rho,
                    d.rho
                );
            }
        }
        assert!(ds > 1.0);
        assert!(cache.stats().hits > 0);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn adaptive_cache_reuses_rungs() {
        let omega = OmegaSpec::new(0.1, 10).unwrap();
        let mut cache = AdaptiveSigmaCache::new(omega, 0.05, 1000).unwrap();
        // Many queries inside one d_s interval share a single rung.
        for i in 0..100 {
            cache.probability_values(0.0, 1.0 + i as f64 * 1e-4);
        }
        assert!(cache.len() <= 2, "rungs {}", cache.len());
        assert_eq!(cache.stats().hits, 100);
    }

    #[test]
    fn adaptive_cache_respects_budget() {
        let omega = OmegaSpec::new(0.1, 10).unwrap();
        let mut cache = AdaptiveSigmaCache::new(omega, 0.01, 3).unwrap();
        // Exponentially spread sigmas force new rungs until the budget hits.
        for i in 0..10 {
            cache.probability_values(0.0, 1.0f64 * 3.0f64.powi(i));
        }
        assert_eq!(cache.len(), 3);
        assert!(cache.stats().misses > 0);
    }

    #[test]
    fn online_builder_emits_after_warmup() {
        let omega = OmegaSpec::new(0.5, 6).unwrap();
        let mut b = OnlineViewBuilder::new(
            MetricKind::ArmaGarch,
            MetricConfig::default(),
            60,
            omega,
            Some(0.01),
        )
        .unwrap();
        let s = TemperatureGenerator::default().generate(100);
        let mut emitted = 0;
        for obs in s.iter() {
            if let Some(row) = b.push(obs.time, obs.value).unwrap() {
                emitted += 1;
                assert_eq!(row.values.len(), 6);
                let mass: f64 = row.values.iter().map(|v| v.rho).sum();
                assert!(mass <= 1.0 + 1e-9);
            }
        }
        assert_eq!(emitted, 40);
        assert!(b.cache_stats().unwrap().hits > 0);
    }

    #[test]
    fn online_density_does_not_peek_at_current_value() {
        // Feed a constant series with a final outlier: the inference
        // emitted alongside the outlier must still be centred on the old
        // regime (it was made before the outlier was admitted).
        let omega = OmegaSpec::new(0.5, 4).unwrap();
        let mut b = OnlineViewBuilder::new(
            MetricKind::VariableThresholding,
            MetricConfig::default(),
            60,
            omega,
            None,
        )
        .unwrap();
        let s = TemperatureGenerator::default().generate(80);
        let mut rows = Vec::new();
        for obs in s.iter() {
            if let Some(r) = b.push(obs.time, obs.value).unwrap() {
                rows.push(r);
            }
        }
        let mut b2 = OnlineViewBuilder::new(
            MetricKind::VariableThresholding,
            MetricConfig::default(),
            60,
            omega,
            None,
        )
        .unwrap();
        let mut spiked = s.values().to_vec();
        let last = spiked.len() - 1;
        spiked[last] += 1000.0;
        let mut rows2 = Vec::new();
        for (i, &v) in spiked.iter().enumerate() {
            if let Some(r) = b2.push(s.timestamps()[i], v).unwrap() {
                rows2.push(r);
            }
        }
        // The last emitted inference must be identical in both runs.
        let a = rows.last().unwrap();
        let b = rows2.last().unwrap();
        assert_eq!(a.inference.expected, b.inference.expected);
    }

    #[test]
    fn warmup_countdown() {
        let omega = OmegaSpec::new(0.5, 4).unwrap();
        let mut b = OnlineViewBuilder::new(
            MetricKind::VariableThresholding,
            MetricConfig::default(),
            60,
            omega,
            None,
        )
        .unwrap();
        assert_eq!(b.warmup_remaining(), 60);
        b.push(0, 1.0).unwrap();
        assert_eq!(b.warmup_remaining(), 59);
    }

    #[test]
    fn invalid_configs_rejected() {
        let omega = OmegaSpec::new(0.5, 4).unwrap();
        assert!(AdaptiveSigmaCache::new(omega, 0.0, 10).is_err());
        assert!(AdaptiveSigmaCache::new(omega, 0.5, 0).is_err());
        assert!(OnlineViewBuilder::new(
            MetricKind::ArmaGarch,
            MetricConfig::default(),
            5,
            omega,
            None
        )
        .is_err());
    }
}
