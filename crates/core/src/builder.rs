//! The Ω-View builder (paper Section VI): materialising probabilistic
//! views from inferred densities.
//!
//! The builder runs a dynamic density metric over every sliding window in
//! the requested time interval, records the model table `(t, r̂_t, σ̂_t)`
//! (the paper stores "parameters for generating the probabilities", after
//! Jampani et al.), and then evaluates the probability value generation
//! query (eq. 9) for each tuple — either directly, or through the σ-cache.
//!
//! Both passes are embarrassingly parallel across windows (the metrics are
//! stateless between windows and the σ-cache is lock-free), so the builder
//! fans each pass out over contiguous window segments via
//! [`crate::parallel`]. Segment results are concatenated in order, making
//! the output bit-for-bit identical to a sequential build for any thread
//! count.

use crate::error::CoreError;
use crate::metrics::{make_metric, MetricConfig, MetricKind};
use crate::omega::{probability_values, OmegaSpec, ProbabilityValue};
use crate::parallel::{effective_threads, map_segments, try_map_segments};
use crate::sigma_cache::{direct_probability_values, CacheStats, SigmaCache, SigmaCacheConfig};
use std::time::{Duration, Instant};
use tspdb_probdb::{ColumnType, ProbTable, Schema, Value};
use tspdb_stats::Density;
use tspdb_timeseries::TimeSeries;

/// Configuration of the Ω-view builder.
#[derive(Debug, Clone, Copy)]
pub struct ViewBuilderConfig {
    /// Which dynamic density metric infers the densities.
    pub metric: MetricKind,
    /// Parameters of that metric.
    pub metric_config: MetricConfig,
    /// Sliding-window length `H`.
    pub window: usize,
    /// σ-cache configuration; `None` evaluates every tuple directly (the
    /// "naive" baseline of Fig. 14a).
    pub cache: Option<SigmaCacheConfig>,
    /// Worker threads for the build: `0` uses one per available core, `1`
    /// builds sequentially on the calling thread. The produced view is
    /// identical for every setting.
    pub threads: usize,
}

impl Default for ViewBuilderConfig {
    fn default() -> Self {
        ViewBuilderConfig {
            metric: MetricKind::ArmaGarch,
            metric_config: MetricConfig::default(),
            window: 60,
            cache: Some(SigmaCacheConfig::default()),
            threads: 0,
        }
    }
}

/// One row of the model table: the stored distribution parameters for one
/// timestamp (`r̂_t`, `σ̂_t`), mirroring the framework picture (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelRow {
    /// Timestamp.
    pub time: i64,
    /// Expected true value `r̂_t`.
    pub expected: f64,
    /// Inferred standard deviation `σ̂_t`.
    pub sigma: f64,
}

/// A materialised probabilistic view plus build diagnostics.
#[derive(Debug, Clone)]
pub struct BuiltView {
    /// The tuple-independent view: schema `(t, lambda, lo, hi)` with a
    /// probability per row — the paper's `prob_view`.
    pub view: ProbTable,
    /// The model table backing the view.
    pub model: Vec<ModelRow>,
    /// σ-cache statistics when a cache was used.
    pub cache_stats: Option<CacheStats>,
    /// Number of distributions the cache stored.
    pub cache_len: Option<usize>,
    /// Cache memory footprint in bytes.
    pub cache_bytes: Option<usize>,
    /// Wall-clock time spent inferring densities.
    pub inference_time: Duration,
    /// Wall-clock time spent generating probability values (the part the
    /// σ-cache accelerates).
    pub generation_time: Duration,
    /// Windows where the metric failed and no tuples were emitted.
    pub failures: usize,
    /// Worker threads the build fanned out over.
    pub threads_used: usize,
}

/// Schema of generated views: `(t, lambda, lo, hi)` + tuple probability.
pub fn view_schema() -> Schema {
    Schema::of(&[
        ("t", ColumnType::Int),
        ("lambda", ColumnType::Int),
        ("lo", ColumnType::Float),
        ("hi", ColumnType::Float),
    ])
}

/// The Ω-view builder.
#[derive(Debug, Clone)]
pub struct OmegaViewBuilder {
    config: ViewBuilderConfig,
}

impl OmegaViewBuilder {
    /// Creates a builder after validating the configuration.
    pub fn new(config: ViewBuilderConfig) -> Result<Self, CoreError> {
        config.metric_config.validate()?;
        if config.window == 0 {
            return Err(CoreError::InvalidConfig(
                "view builder window must be positive".into(),
            ));
        }
        Ok(OmegaViewBuilder { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &ViewBuilderConfig {
        &self.config
    }

    /// Builds the probabilistic view for `series` over the Ω lattice,
    /// restricted to timestamps in `time_bounds` (inclusive; `None` means
    /// the whole series). Window history may extend before the bound —
    /// the interval restricts which tuples are *emitted*, matching the
    /// `WHERE` semantics of the paper's Fig. 7 query.
    pub fn build(
        &self,
        series: &TimeSeries,
        omega: OmegaSpec,
        view_name: &str,
        time_bounds: Option<(i64, i64)>,
    ) -> Result<BuiltView, CoreError> {
        let h = self.config.window;
        let metric = make_metric(self.config.metric, self.config.metric_config)?;
        if h < metric.min_window() {
            return Err(CoreError::WindowTooShort {
                needed: metric.min_window(),
                got: h,
            });
        }
        drop(metric); // each worker segment makes its own instance
        let values = series.values();
        let times = series.timestamps();

        // Indices of the windows whose tuples the view emits.
        let emitted: Vec<usize> = (h..values.len())
            .filter(|&t| match time_bounds {
                Some((lo, hi)) => times[t] >= lo && times[t] <= hi,
                None => true,
            })
            .collect();
        let threads_used = effective_threads(self.config.threads, emitted.len());

        // Pass 1: infer a density per emitted timestamp, one segment of
        // windows per worker. Metrics are stateless across windows, so each
        // worker's fresh instance produces the sequential result.
        let infer_started = Instant::now();
        let segments = try_map_segments(emitted.len(), self.config.threads, |range| {
            let mut metric = make_metric(self.config.metric, self.config.metric_config)?;
            let mut densities: Vec<(i64, Density)> = Vec::with_capacity(range.len());
            let mut failures = 0usize;
            for &t in &emitted[range] {
                match metric.infer(&values[t - h..t]) {
                    Ok(inf) => densities.push((times[t], inf.density)),
                    Err(_) => failures += 1,
                }
            }
            Ok::<_, CoreError>((densities, failures))
        })?;
        let mut densities: Vec<(i64, Density)> = Vec::with_capacity(emitted.len());
        let mut failures = 0usize;
        for (segment, segment_failures) in segments {
            densities.extend(segment);
            failures += segment_failures;
        }
        let inference_time = infer_started.elapsed();

        // Optional σ-cache over the Gaussian σ̂ spread of this view (the
        // paper computes min/max σ̂ over tuples matching the WHERE clause).
        let cache = match self.config.cache {
            Some(cfg) => {
                let sigmas: Vec<f64> = densities
                    .iter()
                    .filter(|(_, d)| matches!(d, Density::Gaussian(_)))
                    .map(|(_, d)| d.std())
                    .collect();
                match (
                    sigmas.iter().cloned().fold(f64::INFINITY, f64::min),
                    sigmas.iter().cloned().fold(0.0f64, f64::max),
                ) {
                    (lo, hi) if lo.is_finite() && hi > 0.0 => {
                        Some(SigmaCache::build(lo, hi, omega, cfg)?)
                    }
                    _ => None,
                }
            }
            None => None,
        };

        // Pass 2: generate probability values per tuple (eq. 9). The
        // σ-cache is lock-free (`&self` lookups), so all workers share it
        // directly.
        let gen_started = Instant::now();
        let cache_ref = cache.as_ref();
        let tuple_segments = map_segments(densities.len(), self.config.threads, |range| {
            densities[range]
                .iter()
                .map(|(time, density)| {
                    let rows: Vec<ProbabilityValue> = match (cache_ref, density) {
                        (Some(c), Density::Gaussian(g)) => c.probability_values(g.mean(), g.std()),
                        (Some(_), other) => {
                            // Uniform densities bypass the Gaussian cache.
                            probability_values(other, &omega)
                        }
                        (None, Density::Gaussian(g)) => {
                            direct_probability_values(g.mean(), g.std(), &omega)
                        }
                        (None, other) => probability_values(other, &omega),
                    };
                    (*time, *density, rows)
                })
                .collect::<Vec<_>>()
        });

        // Assembly: segment order == time order, so the view and model are
        // identical to the sequential build.
        let mut view = ProbTable::new(view_name.to_string(), view_schema());
        let mut model = Vec::with_capacity(densities.len());
        for (time, density, rows) in tuple_segments.into_iter().flatten() {
            model.push(ModelRow {
                time,
                expected: density.mean(),
                sigma: density.std(),
            });
            for pv in rows {
                view.insert(
                    vec![
                        Value::Int(time),
                        Value::Int(pv.lambda),
                        Value::Float(pv.lo),
                        Value::Float(pv.hi),
                    ],
                    pv.rho.clamp(0.0, 1.0),
                )?;
            }
        }
        let generation_time = gen_started.elapsed();

        Ok(BuiltView {
            view,
            model,
            cache_stats: cache.as_ref().map(|c| c.stats()),
            cache_len: cache.as_ref().map(|c| c.len()),
            cache_bytes: cache.as_ref().map(|c| c.memory_bytes()),
            inference_time,
            generation_time,
            failures,
            threads_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_timeseries::generate::TemperatureGenerator;

    fn series(n: usize) -> TimeSeries {
        TemperatureGenerator::default().generate(n)
    }

    fn builder(cache: Option<SigmaCacheConfig>) -> OmegaViewBuilder {
        OmegaViewBuilder::new(ViewBuilderConfig {
            cache,
            ..ViewBuilderConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn builds_view_with_expected_shape() {
        let s = series(200);
        let omega = OmegaSpec::new(0.5, 8).unwrap();
        let built = builder(None).build(&s, omega, "pv", None).unwrap();
        // 200 − 60 emitted timestamps × 8 cells.
        assert_eq!(built.model.len(), 140);
        assert_eq!(built.view.len(), 140 * 8);
        assert_eq!(built.view.name(), "pv");
        assert!(built.failures == 0);
        // Every tuple's probability is valid and per-t masses sum ≤ 1.
        let mut per_t = std::collections::BTreeMap::new();
        for (row, p) in built.view.iter() {
            assert!((0.0..=1.0).contains(&p));
            *per_t.entry(row[0].as_i64().unwrap()).or_insert(0.0) += p;
        }
        for (&t, &mass) in &per_t {
            assert!(mass <= 1.0 + 1e-9, "t {t}: mass {mass}");
            assert!(mass > 0.5, "t {t}: lattice too narrow ({mass})");
        }
    }

    #[test]
    fn cached_and_naive_views_agree_within_tolerance() {
        let s = series(260);
        let omega = OmegaSpec::new(0.2, 20).unwrap();
        let naive = builder(None).build(&s, omega, "pv", None).unwrap();
        let cached = builder(Some(SigmaCacheConfig::default()))
            .build(&s, omega, "pv", None)
            .unwrap();
        assert_eq!(naive.view.len(), cached.view.len());
        let mut max_err = 0.0f64;
        for ((_, pn), (_, pc)) in naive.view.iter().zip(cached.view.iter()) {
            max_err = max_err.max((pn - pc).abs());
        }
        // H′ = 0.01 keeps per-cell error tiny.
        assert!(max_err < 0.02, "cache error {max_err}");
        let stats = cached.cache_stats.unwrap();
        assert!(stats.hits > 0);
        assert_eq!(stats.misses, 0);
        assert!(cached.cache_len.unwrap() >= 1);
    }

    #[test]
    fn time_bounds_restrict_emitted_tuples() {
        let s = series(200); // timestamps 0, 120, 240, …
        let omega = OmegaSpec::new(0.5, 4).unwrap();
        let t_lo = s.timestamps()[100];
        let t_hi = s.timestamps()[109];
        let built = builder(None)
            .build(&s, omega, "pv", Some((t_lo, t_hi)))
            .unwrap();
        assert_eq!(built.model.len(), 10);
        for row in built.model {
            assert!(row.time >= t_lo && row.time <= t_hi);
        }
    }

    #[test]
    fn model_rows_match_view_lattice_centres() {
        let s = series(120);
        let omega = OmegaSpec::new(0.5, 4).unwrap();
        let built = builder(None).build(&s, omega, "pv", None).unwrap();
        // For each model row, the λ = 0 tuple's lo equals r̂.
        for m in &built.model {
            let lo0 = built
                .view
                .iter()
                .find(|(row, _)| row[0].as_i64() == Some(m.time) && row[1].as_i64() == Some(0))
                .map(|(row, _)| row[2].as_f64().unwrap())
                .unwrap();
            assert!((lo0 - m.expected).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_metric_views_bypass_cache() {
        let s = series(150);
        let omega = OmegaSpec::new(0.5, 4).unwrap();
        let b = OmegaViewBuilder::new(ViewBuilderConfig {
            metric: MetricKind::UniformThresholding,
            metric_config: MetricConfig {
                threshold_u: 1.0,
                ..MetricConfig::default()
            },
            window: 60,
            cache: Some(SigmaCacheConfig::default()),
            ..ViewBuilderConfig::default()
        })
        .unwrap();
        let built = b.build(&s, omega, "pv", None).unwrap();
        assert!(!built.view.is_empty());
        // Uniform densities never hit the Gaussian ladder.
        if let Some(stats) = built.cache_stats {
            assert_eq!(stats.hits, 0);
        }
    }

    #[test]
    fn window_shorter_than_metric_minimum_is_rejected() {
        let err = OmegaViewBuilder::new(ViewBuilderConfig {
            window: 10,
            ..ViewBuilderConfig::default()
        })
        .unwrap()
        .build(&series(100), OmegaSpec::new(0.5, 4).unwrap(), "pv", None)
        .unwrap_err();
        assert!(matches!(err, CoreError::WindowTooShort { .. }));
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let s = series(220);
        let omega = OmegaSpec::new(0.2, 10).unwrap();
        for cache in [None, Some(SigmaCacheConfig::default())] {
            let sequential = OmegaViewBuilder::new(ViewBuilderConfig {
                cache,
                threads: 1,
                ..ViewBuilderConfig::default()
            })
            .unwrap()
            .build(&s, omega, "pv", None)
            .unwrap();
            for threads in [2, 3, 8] {
                let parallel = OmegaViewBuilder::new(ViewBuilderConfig {
                    cache,
                    threads,
                    ..ViewBuilderConfig::default()
                })
                .unwrap()
                .build(&s, omega, "pv", None)
                .unwrap();
                assert_eq!(parallel.view, sequential.view, "threads = {threads}");
                assert_eq!(parallel.model, sequential.model, "threads = {threads}");
                assert_eq!(parallel.failures, sequential.failures);
            }
        }
    }

    #[test]
    fn thread_count_is_reported() {
        let s = series(120);
        let omega = OmegaSpec::new(0.5, 4).unwrap();
        let built = OmegaViewBuilder::new(ViewBuilderConfig {
            threads: 2,
            ..ViewBuilderConfig::default()
        })
        .unwrap()
        .build(&s, omega, "pv", None)
        .unwrap();
        assert_eq!(built.threads_used, 2);
    }

    #[test]
    fn empty_time_range_builds_empty_view() {
        let s = series(120);
        let omega = OmegaSpec::new(0.5, 4).unwrap();
        let built = builder(None)
            .build(&s, omega, "pv", Some((i64::MAX - 1, i64::MAX)))
            .unwrap();
        assert!(built.view.is_empty());
        assert!(built.model.is_empty());
    }
}
