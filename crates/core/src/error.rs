//! Error type for the engine layer.

use std::fmt;
use tspdb_probdb::DbError;
use tspdb_stats::StatsError;

/// Errors surfaced by the density-metric / view-builder layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The sliding window is too short for the requested metric.
    WindowTooShort {
        /// Minimum length required.
        needed: usize,
        /// Length supplied.
        got: usize,
    },
    /// A numerical routine failed.
    Numerics(StatsError),
    /// The database layer reported a failure.
    Db(DbError),
    /// σ-cache constraints are mutually unsatisfiable (distance constraint
    /// demands a finer ladder than the memory constraint allows).
    CacheConstraintsConflict {
        /// Maximum admissible ratio from the distance constraint (eq. 11).
        ds_distance: f64,
        /// Minimum admissible ratio from the memory constraint (eq. 14).
        ds_memory: f64,
    },
    /// Configuration rejected (bad κ, odd n, …) with an explanation.
    InvalidConfig(String),
    /// The requested metric name is unknown.
    UnknownMetric(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::WindowTooShort { needed, got } => {
                write!(
                    f,
                    "window too short: metric needs {needed} values, got {got}"
                )
            }
            CoreError::Numerics(e) => write!(f, "numerics: {e}"),
            CoreError::Db(e) => write!(f, "database: {e}"),
            CoreError::CacheConstraintsConflict {
                ds_distance,
                ds_memory,
            } => write!(
                f,
                "sigma-cache constraints conflict: distance constraint allows ratio ≤ \
                 {ds_distance:.6}, memory constraint requires ratio ≥ {ds_memory:.6}; \
                 relax one of them (paper Section VI-B trade-off)"
            ),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::UnknownMetric(name) => write!(
                f,
                "unknown dynamic density metric {name:?} (expected one of: ut, vt, \
                 arma_garch, kalman_garch, cgarch)"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numerics(e) => Some(e),
            CoreError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        match e {
            StatsError::InsufficientData { needed, got } => {
                CoreError::WindowTooShort { needed, got }
            }
            other => CoreError::Numerics(other),
        }
    }
}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insufficient_data_maps_to_window_too_short() {
        let e: CoreError = StatsError::InsufficientData { needed: 30, got: 5 }.into();
        assert_eq!(e, CoreError::WindowTooShort { needed: 30, got: 5 });
    }

    #[test]
    fn conflict_message_mentions_both_bounds() {
        let e = CoreError::CacheConstraintsConflict {
            ds_distance: 1.02,
            ds_memory: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("1.02") && msg.contains("1.5"));
    }

    #[test]
    fn unknown_metric_lists_options() {
        let msg = CoreError::UnknownMetric("garch2".into()).to_string();
        assert!(msg.contains("arma_garch"));
    }
}
