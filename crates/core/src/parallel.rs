//! Deterministic fork-join parallelism over index ranges.
//!
//! The helpers live in [`tspdb_stats::parallel`] so that every workspace
//! layer (including `tspdb-probdb`, which sits *below* this crate and runs
//! its Monte-Carlo possible-worlds executor on the same primitives) can
//! share one implementation; this module re-exports them under the
//! historical `tspdb_core::parallel` path.

pub use tspdb_stats::parallel::{effective_threads, map_segments, try_map_segments};
