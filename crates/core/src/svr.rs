//! Successive Variance Reduction filter (paper Algorithm 2).
//!
//! Given a short value window that may contain significant anomalies, the
//! filter repeatedly finds the single point whose removal reduces the
//! sample variance the most, deletes it, and reconstructs it by
//! interpolation — stopping as soon as the window's sample variance drops
//! below the threshold `SVmax`. Running sums make each sweep O(K), so the
//! whole filter is O(K²) in the worst case (the paper's "quadratic"
//! complexity remark).
//!
//! `SVmax` is learned from clean data as the maximum windowed variance over
//! windows of length `ocmax` (Section V-B); see
//! [`tspdb_stats::descriptive::max_windowed_variance`].

use tspdb_stats::descriptive::lerp;

/// Outcome of one filter run.
#[derive(Debug, Clone, PartialEq)]
pub struct SvrOutcome {
    /// The cleaned values (same length as the input).
    pub values: Vec<f64>,
    /// Indices that were deleted and reconstructed, in deletion order.
    pub replaced: Vec<usize>,
    /// Sample variance of the final window.
    pub final_variance: f64,
}

/// Sample variance from running sums (`Σv`, `Σv²`, count).
fn variance_from_sums(sum: f64, sum_sq: f64, k: usize) -> f64 {
    if k < 2 {
        return 0.0;
    }
    let kf = k as f64;
    ((sum_sq - sum * sum / kf) / (kf - 1.0)).max(0.0)
}

/// Runs the successive variance reduction filter.
///
/// Points keep being removed (and linearly reconstructed from their
/// neighbours; edge points extrapolate from the two nearest interior
/// values) until the sample variance is at most `sv_max`, at most
/// `values.len() / 2` points have been replaced (a runaway guard: if half
/// the window is "erroneous" the window is a trend change, not noise), or
/// fewer than four points would remain informative.
pub fn svr_filter(values: &[f64], sv_max: f64) -> SvrOutcome {
    assert!(sv_max >= 0.0, "svr_filter: SVmax must be non-negative");
    let mut v = values.to_vec();
    let mut replaced = Vec::new();
    let k = v.len();
    if k < 4 {
        let var = tspdb_stats::descriptive::sample_variance(&v).max(0.0);
        return SvrOutcome {
            values: v,
            replaced,
            final_variance: if var.is_nan() { 0.0 } else { var },
        };
    }
    let max_deletions = k / 2;

    loop {
        let sum: f64 = v.iter().sum();
        let sum_sq: f64 = v.iter().map(|x| x * x).sum();
        let sv = variance_from_sums(sum, sum_sq, k);
        if sv <= sv_max || replaced.len() >= max_deletions {
            return SvrOutcome {
                values: v,
                replaced,
                final_variance: sv,
            };
        }

        // One O(K) sweep: variance of V \ v_k via corrected running sums.
        let mut best_var = f64::INFINITY;
        let mut best_k = 0usize;
        for (i, &x) in v.iter().enumerate() {
            let var_without = variance_from_sums(sum - x, sum_sq - x * x, k - 1);
            if var_without < best_var {
                best_var = var_without;
                best_k = i;
            }
        }

        // Delete v_k̄ and reconstruct it (Algorithm 2, steps 15-19).
        let reconstructed = if best_k > 0 && best_k + 1 < k {
            lerp(v[best_k - 1], v[best_k + 1], 0.5)
        } else if best_k == 0 {
            // Extrapolate backwards from the two nearest points.
            2.0 * v[1] - v[2]
        } else {
            // Extrapolate forwards.
            2.0 * v[k - 2] - v[k - 3]
        };
        v[best_k] = reconstructed;
        replaced.push(best_k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_stats::descriptive::sample_variance;

    #[test]
    fn clean_window_passes_through_unchanged() {
        let values: Vec<f64> = (0..20).map(|i| 10.0 + 0.01 * (i as f64).sin()).collect();
        let sv_max = sample_variance(&values) * 2.0;
        let out = svr_filter(&values, sv_max);
        assert!(out.replaced.is_empty());
        assert_eq!(out.values, values);
    }

    #[test]
    fn removes_single_spike_like_fig6() {
        // The paper's Fig. 6 scenario: smooth data with isolated spikes.
        let mut values: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        values[7] = 50.0;
        let out = svr_filter(&values, 0.5);
        assert_eq!(out.replaced, vec![7]);
        // Reconstructed by interpolating the neighbours: (0.6 + 0.8)/2.
        assert!((out.values[7] - 0.7).abs() < 1e-12);
        assert!(out.final_variance <= 0.5);
    }

    #[test]
    fn removes_two_spikes_in_variance_order() {
        let mut values: Vec<f64> = (0..24).map(|i| (i as f64 * 0.2).sin()).collect();
        values[5] = 40.0; // bigger spike — must go first
        values[15] = -20.0;
        let out = svr_filter(&values, 0.6);
        assert_eq!(out.replaced, vec![5, 15]);
        assert!(out.values[5].abs() < 2.0);
        assert!(out.values[15].abs() < 2.0);
    }

    #[test]
    fn edge_spikes_are_extrapolated() {
        let mut values: Vec<f64> = (0..12).map(|i| 1.0 + i as f64).collect();
        values[0] = -100.0;
        let out = svr_filter(&values, 2.0);
        assert!(out.replaced.contains(&0));
        // Linear data ⇒ extrapolation reproduces the line: v[0] = 2·v[1] − v[2] = 1.
        assert!((out.values[0] - 1.0).abs() < 1e-9, "got {}", out.values[0]);

        let mut tail: Vec<f64> = (0..12).map(|i| 1.0 + i as f64).collect();
        let last = tail.len() - 1;
        tail[last] = 500.0;
        let out = svr_filter(&tail, 2.0);
        assert!(out.replaced.contains(&last));
        assert!(
            (out.values[last] - 12.0).abs() < 1e-9,
            "got {}",
            out.values[last]
        );
    }

    #[test]
    fn respects_deletion_budget() {
        // All values wildly dispersed with SVmax ≈ 0: the guard must stop
        // at K/2 replacements instead of flattening everything.
        let values: Vec<f64> = (0..16)
            .map(|i| if i % 2 == 0 { 100.0 } else { -100.0 })
            .collect();
        let out = svr_filter(&values, 1e-9);
        assert!(out.replaced.len() <= 8);
    }

    #[test]
    fn tiny_windows_are_returned_untouched() {
        let out = svr_filter(&[5.0, -5.0, 9.0], 0.0);
        assert!(out.replaced.is_empty());
        assert_eq!(out.values, vec![5.0, -5.0, 9.0]);
    }

    #[test]
    fn final_variance_is_consistent() {
        let mut values: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).cos()).collect();
        values[10] = 30.0;
        let out = svr_filter(&values, 0.6);
        let recomputed = sample_variance(&out.values);
        assert!((out.final_variance - recomputed).abs() < 1e-9);
    }

    #[test]
    fn variance_never_increases_across_iterations() {
        // Deleting the argmax-reduction point then interpolating keeps the
        // variance monotonically non-increasing in practice; verify on a
        // multi-spike window by checking the end state is below the start.
        let base: Vec<f64> = (0..40).map(|i| (i as f64 * 0.1).sin() * 2.0).collect();
        let clean_var = sample_variance(&base);
        let mut values = base;
        values[3] = 60.0;
        values[21] = -45.0;
        values[33] = 70.0;
        let before = sample_variance(&values);
        let out = svr_filter(&values, clean_var * 1.2);
        assert!(out.final_variance < before);
        assert_eq!(out.replaced.len(), 3);
    }
}
