//! Density distance: the paper's quality measure for dynamic density
//! metrics (Section II-B).
//!
//! The true density `p̂_t` is unobservable, so quality is measured
//! indirectly through the probability integral transform (PIT): if the
//! inferred densities match the data-generating ones, the transforms
//! `z_i = P_i(R_i ≤ r_i)` are i.i.d. uniform on (0, 1) (Diebold et al.).
//! The *density distance* is the Euclidean distance between the
//! histogram-approximated empirical CDF `Q_Z` of the transforms and the
//! ideal uniform CDF `U_Z` (eq. 1) — smaller is better, zero is perfect.

use crate::error::CoreError;
use crate::metrics::DynamicDensityMetric;
use std::time::{Duration, Instant};
use tspdb_stats::descriptive::Histogram;
use tspdb_timeseries::TimeSeries;

/// Number of histogram cells used to approximate `Q_Z`; the paper specifies
/// "a histogram approximation method" without the count, and the distances
/// it reports (UT/VT up to ≈ 3) are consistent with ~100 cells.
pub const DEFAULT_PIT_BINS: usize = 100;

/// Computes the density distance (eq. 1) of a PIT sample with the given
/// number of histogram cells.
///
/// Returns `NaN` on an empty sample. The maximum possible value for `bins`
/// cells is `sqrt(Σ_b U(x_b)²) ≈ sqrt(bins / 3)` (all transforms piled at
/// zero), ≈ 5.77 for 100 cells.
pub fn density_distance_with_bins(pits: &[f64], bins: usize) -> f64 {
    if pits.is_empty() {
        return f64::NAN;
    }
    let mut hist = Histogram::new(0.0, 1.0, bins);
    for &z in pits {
        hist.push(z);
    }
    let qz = hist.cdf();
    let mut acc = 0.0;
    for (b, q) in qz.iter().enumerate() {
        let u = hist.right_edge(b); // ideal uniform CDF at the cell edge
        acc += (u - q) * (u - q);
    }
    acc.sqrt()
}

/// [`density_distance_with_bins`] at the default cell count.
pub fn density_distance(pits: &[f64]) -> f64 {
    density_distance_with_bins(pits, DEFAULT_PIT_BINS)
}

/// Result of evaluating one metric over one series.
#[derive(Debug, Clone)]
pub struct MetricEvaluation {
    /// The density distance (eq. 1).
    pub density_distance: f64,
    /// The PIT values `z_i`, in series order.
    pub pits: Vec<f64>,
    /// Number of successful inferences.
    pub inferences: usize,
    /// Number of windows where the metric failed (degenerate data, …).
    pub failures: usize,
    /// Total wall-clock time spent inside `infer`.
    pub total_time: Duration,
}

impl MetricEvaluation {
    /// Mean wall-clock time per density inference — the quantity of the
    /// paper's Fig. 11.
    pub fn avg_time(&self) -> Duration {
        if self.inferences == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.inferences as u32
        }
    }
}

/// Evaluates a metric over every sliding window of a series (paper
/// Section VII-A): for each `t ≥ H`, infer `p_t` from `S^H_{t-1}` and
/// record the PIT of the observed `r_t`; the density distance of the PIT
/// sample is the metric's quality at window size `H`.
///
/// `stride` > 1 subsamples the windows (evaluating every `stride`-th
/// target) — used to keep the Kalman-GARCH sweeps tractable, exactly as
/// sub-sampling does not bias the PIT distribution.
pub fn evaluate_metric(
    metric: &mut dyn DynamicDensityMetric,
    series: &TimeSeries,
    h: usize,
    stride: usize,
) -> Result<MetricEvaluation, CoreError> {
    if h < metric.min_window() {
        return Err(CoreError::WindowTooShort {
            needed: metric.min_window(),
            got: h,
        });
    }
    if series.len() <= h {
        return Err(CoreError::WindowTooShort {
            needed: h + 1,
            got: series.len(),
        });
    }
    let stride = stride.max(1);
    let values = series.values();
    let mut pits = Vec::new();
    let mut failures = 0usize;
    let mut total_time = Duration::ZERO;
    let mut t = h;
    while t < values.len() {
        let window = &values[t - h..t];
        let started = Instant::now();
        match metric.infer(window) {
            Ok(inf) => {
                total_time += started.elapsed();
                pits.push(inf.density.pit(values[t]));
            }
            Err(_) => {
                total_time += started.elapsed();
                failures += 1;
            }
        }
        t += stride;
    }
    let inferences = pits.len();
    Ok(MetricEvaluation {
        density_distance: density_distance(&pits),
        pits,
        inferences,
        failures,
        total_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{ArmaGarch, MetricConfig, UniformThresholding, VariableThresholding};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tspdb_timeseries::generate::ArmaGarchGenerator;

    #[test]
    fn uniform_pits_give_near_zero_distance() {
        let mut rng = StdRng::seed_from_u64(4);
        let pits: Vec<f64> = (0..20_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let d = density_distance(&pits);
        assert!(d < 0.15, "uniform sample distance {d}");
    }

    #[test]
    fn degenerate_pits_give_maximal_distance() {
        // All mass at zero: distance ≈ sqrt(Σ U(x)²) ≈ sqrt(bins/3).
        let pits = vec![0.0; 1000];
        let d = density_distance(&pits);
        let theo = (DEFAULT_PIT_BINS as f64 / 3.0).sqrt();
        assert!((d - theo).abs() < 0.35, "distance {d} vs ≈ {theo}");
    }

    #[test]
    fn distance_orders_calibration_quality() {
        // PITs from a slightly miscalibrated density must score between
        // perfect and degenerate.
        let mut rng = StdRng::seed_from_u64(5);
        let skewed: Vec<f64> = (0..5000)
            .map(|_| rng.gen_range(0.0f64..1.0).powf(1.5))
            .collect();
        let uniform: Vec<f64> = (0..5000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let d_skew = density_distance(&skewed);
        let d_unif = density_distance(&uniform);
        assert!(d_skew > d_unif * 2.0, "skew {d_skew} vs uniform {d_unif}");
    }

    #[test]
    fn empty_sample_is_nan() {
        assert!(density_distance(&[]).is_nan());
    }

    #[test]
    fn bin_count_changes_scale_not_ordering() {
        let mut rng = StdRng::seed_from_u64(6);
        let good: Vec<f64> = (0..3000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let bad: Vec<f64> = (0..3000).map(|_| rng.gen_range(0.0f64..0.3)).collect();
        for bins in [20, 50, 100, 200] {
            let dg = density_distance_with_bins(&good, bins);
            let db = density_distance_with_bins(&bad, bins);
            assert!(db > dg, "bins {bins}: ordering violated ({db} vs {dg})");
        }
    }

    #[test]
    fn garch_metric_beats_naive_metrics_on_garch_data() {
        // The Fig. 10 headline on a controlled data-generating process: a
        // conditional-variance-aware metric is better calibrated than
        // fixed/window-variance metrics on heteroskedastic data.
        let series = ArmaGarchGenerator {
            seed: 31,
            c: 0.0,
            phi: 0.6,
            theta: 0.0,
            alpha0: 0.02,
            alpha1: 0.25,
            beta1: 0.70,
        }
        .generate(1500);
        let h = 120;
        let cfg = MetricConfig {
            p: 1,
            q: 0,
            threshold_u: 0.5,
            ..MetricConfig::default()
        };
        let mut ut = UniformThresholding::new(cfg).unwrap();
        let mut vt = VariableThresholding::new(cfg).unwrap();
        let mut ag = ArmaGarch::new(cfg).unwrap();
        let d_ut = evaluate_metric(&mut ut, &series, h, 1)
            .unwrap()
            .density_distance;
        let d_vt = evaluate_metric(&mut vt, &series, h, 1)
            .unwrap()
            .density_distance;
        let d_ag = evaluate_metric(&mut ag, &series, h, 1)
            .unwrap()
            .density_distance;
        assert!(
            d_ag < d_vt && d_ag < d_ut,
            "ARMA-GARCH {d_ag} not best (UT {d_ut}, VT {d_vt})"
        );
    }

    #[test]
    fn stride_subsampling_keeps_distance_comparable() {
        let series = ArmaGarchGenerator::default().generate(2000);
        let cfg = MetricConfig {
            p: 1,
            ..MetricConfig::default()
        };
        let mut m1 = ArmaGarch::new(cfg).unwrap();
        let mut m4 = ArmaGarch::new(cfg).unwrap();
        let full = evaluate_metric(&mut m1, &series, 100, 1).unwrap();
        let sub = evaluate_metric(&mut m4, &series, 100, 4).unwrap();
        assert!(sub.inferences * 4 >= full.inferences);
        assert!(
            (full.density_distance - sub.density_distance).abs() < 0.6,
            "full {} vs strided {}",
            full.density_distance,
            sub.density_distance
        );
    }

    #[test]
    fn evaluation_validates_window() {
        let series = ArmaGarchGenerator::default().generate(50);
        let mut m = ArmaGarch::new(MetricConfig::default()).unwrap();
        assert!(matches!(
            evaluate_metric(&mut m, &series, 5, 1),
            Err(CoreError::WindowTooShort { .. })
        ));
        assert!(matches!(
            evaluate_metric(&mut m, &series, 60, 1),
            Err(CoreError::WindowTooShort { .. })
        ));
    }

    #[test]
    fn avg_time_divides_by_inferences() {
        let eval = MetricEvaluation {
            density_distance: 0.0,
            pits: vec![0.5; 10],
            inferences: 10,
            failures: 0,
            total_time: Duration::from_millis(100),
        };
        assert_eq!(eval.avg_time(), Duration::from_millis(10));
        let empty = MetricEvaluation {
            density_distance: f64::NAN,
            pits: vec![],
            inferences: 0,
            failures: 0,
            total_time: Duration::from_millis(100),
        };
        assert_eq!(empty.avg_time(), Duration::ZERO);
    }
}
